/**
 * @file
 * SOCK_STREAM sockets between Browsix processes (§3.5).
 *
 * Sequenced, reliable, bi-directional streams: servers bind/listen/accept,
 * clients connect; a connection is a pair of Pipes (one per direction).
 * The kernel owns the port namespace and the accept rendezvous. The main
 * browser context can also connect (kernel-side API) — that's how the
 * XMLHttpRequest-like interface (§4.1) reaches in-Browsix HTTP servers.
 */
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "kernel/pipe.h"

namespace browsix {
namespace kernel {

class SocketFile;
using SocketFilePtr = std::shared_ptr<SocketFile>;

class SocketFile : public KFile
{
  public:
    enum class State { Unbound, Bound, Listening, Connected };

    const char *kind() const override { return "socket"; }

    State state() const { return state_; }
    int port() const { return port_; }
    int remotePort() const { return remotePort_; }

    // --- stream I/O (Connected only) ---
    void read(size_t maxlen, bfs::DataCb cb) override;
    void write(bfs::Buffer data, bfs::SizeCb cb) override;
    void readInto(bfs::ByteSpan dst, bfs::SizeCb cb) override;
    void writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb) override;

    /** Connected sockets forward span ops to their Pipes, which move
     * data through the caller's window directly. */
    bool spanIoDirect() const override { return true; }

    /**
     * shutdown(2) half-close. SHUT_WR closes the transmit stream's
     * write side — a FIN: the peer drains whatever is buffered (or in
     * flight on a shaped link) and then reads EOF — while this side can
     * keep reading; further local writes fail EPIPE (the socket tracks
     * this itself — the underlying Pipe would answer EBADF for its own
     * closed writer). SHUT_RD makes local reads return EOF immediately
     * and collapses the receive stream. Returns 0, ENOTCONN, or EINVAL
     * for an unknown `how`.
     */
    int shutdown(int how);

    // --- state transitions, driven by the kernel's syscall handlers ---
    int bind(int port);
    int listen(int backlog);

    /**
     * Enqueue a fully-connected peer endpoint; completes a pending accept
     * if one is waiting. Returns ECONNREFUSED when the backlog is full.
     */
    int enqueueConnection(SocketFilePtr peer);

    /**
     * Connect-side rendezvous with parking (the deferral protocol's
     * connect hook): enqueue `peer` immediately when an accept is waiting
     * or the backlog has room — done(0) fires before this returns — and
     * otherwise park peer+done until accept frees a backlog slot
     * (done(0), the deferred CQE) or the listener closes
     * (done(ECONNREFUSED), the peer's streams collapsed). Returns true
     * when the completion parked.
     */
    bool enqueueConnectionOrPark(SocketFilePtr peer,
                                 std::function<void(int err)> done);

    /** Accept a connection: immediately if one is pending, else queued. */
    void accept(std::function<void(int err, SocketFilePtr)> cb);

    /** Make this endpoint one side of a connection. */
    void establish(PipePtr rx, PipePtr tx, int local_port, int remote_port);

    bool hasPendingConnections() const { return !pending_.empty(); }

    /**
     * POLLIN-shaped readiness: a Listening socket is readable when a
     * connection awaits accept; a Connected socket when its receive
     * stream is. Every other state reads as ready so a poll never parks
     * against a descriptor whose wait could not end.
     */
    bool readable() const
    {
        if (state_ == State::Listening)
            return !pending_.empty();
        if (state_ == State::Connected)
            return shutRd_ || rx_->readable();
        return true;
    }

    /** POLLOUT-shaped readiness (Connected: transmit stream has room). */
    bool writable() const
    {
        if (state_ == State::Connected)
            return tx_->writable();
        return true;
    }

    /**
     * One-shot readiness watchers (the poll trap's parking hook); same
     * contract as Pipe's — fires immediately when already ready,
     * otherwise on the transition, and may fire spuriously late.
     */
    void watchReadable(std::function<void()> fn);
    void watchWritable(std::function<void()> fn);

  protected:
    void onLastClose() override;

  private:
    struct ConnectWaiter
    {
        SocketFilePtr peer;
        std::function<void(int)> done;
    };

    /** A backlog slot freed: move the oldest parked connect into
     * pending_ and complete it. */
    void promoteConnectWaiter();

    State state_ = State::Unbound;
    int port_ = 0;
    int remotePort_ = 0;
    int backlog_ = 8;
    bool shutRd_ = false, shutWr_ = false;

    PipePtr rx_, tx_;
    std::deque<SocketFilePtr> pending_;
    std::deque<std::function<void(int, SocketFilePtr)>> acceptWaiters_;
    std::deque<ConnectWaiter> connectWaiters_;
    std::vector<std::function<void()>> readyWatchers_;
};

} // namespace kernel
} // namespace browsix
