/**
 * @file
 * Pipes: in-memory buffers with read-side wait queues (§3.4).
 *
 * A read against an empty pipe enqueues its completion callback, invoked
 * when data is written; a write that overfills the buffer is held until
 * the pipe is drained (backpressure — §6 argues browsers themselves need
 * this for postMessage). Sockets reuse Pipe as their per-direction stream.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "kernel/file.h"

namespace browsix {
namespace kernel {

class Pipe : public std::enable_shared_from_this<Pipe>
{
  public:
    static constexpr size_t kDefaultCapacity = 64 * 1024;

    explicit Pipe(size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    /**
     * Read up to maxlen bytes. Completes immediately when data is
     * buffered; at EOF (writer closed, buffer drained) completes with
     * empty data; otherwise queues.
     */
    void read(size_t maxlen, bfs::DataCb cb);

    /**
     * Write data. The completion callback fires once every byte has been
     * accepted into the buffer (i.e. a blocking write); writes beyond
     * capacity wait for readers.
     */
    void write(bfs::Buffer data, bfs::SizeCb cb);

    void closeReader();
    void closeWriter();

    bool readerClosed() const { return readerClosed_; }
    bool writerClosed() const { return writerClosed_; }
    size_t buffered() const { return buf_.size(); }
    size_t capacity() const { return capacity_; }

    /// Experiment counters.
    uint64_t bytesTransferred() const { return bytesTransferred_; }
    uint64_t backpressureStalls() const { return stalls_; }

  private:
    struct ReadWaiter
    {
        size_t maxlen;
        bfs::DataCb cb;
    };
    struct WriteWaiter
    {
        bfs::Buffer data;
        size_t off;
        size_t total;
        bfs::SizeCb cb;
    };

    void pump();

    size_t capacity_;
    std::deque<uint8_t> buf_;
    std::deque<ReadWaiter> readWaiters_;
    std::deque<WriteWaiter> writeWaiters_;
    bool readerClosed_ = false;
    bool writerClosed_ = false;
    uint64_t bytesTransferred_ = 0;
    uint64_t stalls_ = 0;
};

using PipePtr = std::shared_ptr<Pipe>;

/** One end of a pipe, exposed as a file descriptor. */
class PipeEndFile : public KFile
{
  public:
    PipeEndFile(PipePtr pipe, bool reader)
        : pipe_(std::move(pipe)), reader_(reader)
    {
    }

    const char *kind() const override
    {
        return reader_ ? "pipe:r" : "pipe:w";
    }

    void read(size_t maxlen, bfs::DataCb cb) override
    {
        if (!reader_) {
            cb(EBADF, nullptr);
            return;
        }
        pipe_->read(maxlen, std::move(cb));
    }

    void write(bfs::Buffer data, bfs::SizeCb cb) override
    {
        if (reader_) {
            cb(EBADF, 0);
            return;
        }
        pipe_->write(std::move(data), std::move(cb));
    }

    PipePtr pipe() const { return pipe_; }

  protected:
    void onLastClose() override
    {
        if (reader_)
            pipe_->closeReader();
        else
            pipe_->closeWriter();
    }

  private:
    PipePtr pipe_;
    bool reader_;
};

} // namespace kernel
} // namespace browsix
