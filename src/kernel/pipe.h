/**
 * @file
 * Pipes: in-memory buffers with read-side wait queues (§3.4).
 *
 * A read against an empty pipe enqueues its completion callback, invoked
 * when data is written; a write that overfills the buffer is held until
 * the pipe is drained (backpressure — §6 argues browsers themselves need
 * this for postMessage). Sockets reuse Pipe as their per-direction stream.
 *
 * Waiters come in two shapes. Buffer-shaped waiters (read/write) carry
 * their own storage and serve async/host callers. Span-shaped waiters
 * (readInto/writeFrom) carry a caller-pinned window — for sync/ring
 * syscalls it aliases the guest heap, kept alive by the completion
 * callback's captured pin — and are what makes the ring's deferred-CQE
 * protocol zero-copy: a writer's source window is memcpy'd straight into
 * a parked reader's destination window, with no intermediate bfs::Buffer
 * and no transit through the pipe's own deque.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "kernel/file.h"

namespace browsix {
namespace kernel {

class Pipe : public std::enable_shared_from_this<Pipe>
{
  public:
    static constexpr size_t kDefaultCapacity = 64 * 1024;

    explicit Pipe(size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    /**
     * Read up to maxlen bytes. Completes immediately when data is
     * buffered; at EOF (writer closed, buffer drained) completes with
     * empty data; otherwise queues.
     */
    void read(size_t maxlen, bfs::DataCb cb);

    /**
     * Span-shaped read: fill the caller-pinned window and complete with
     * the byte count (0 at EOF). An empty pipe parks the window in the
     * read queue; a later writeFrom lands bytes in it directly.
     */
    void readInto(bfs::ByteSpan dst, bfs::SizeCb cb);

    /**
     * Write data. The completion callback fires once every byte has been
     * accepted into the buffer (i.e. a blocking write); writes beyond
     * capacity wait for readers.
     */
    void write(bfs::Buffer data, bfs::SizeCb cb);

    /**
     * Span-shaped write: consume the caller-pinned source window. Parked
     * readers are served straight from the window (span-to-span for
     * span-shaped readers — the zero-copy leg); the remainder lands in
     * the buffer, and overflow parks the window itself (the completion
     * callback's captures keep it alive).
     */
    void writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb);

    void closeReader();
    void closeWriter();

    bool readerClosed() const { return readerClosed_; }
    bool writerClosed() const { return writerClosed_; }
    size_t buffered() const { return buf_.size(); }
    size_t capacity() const { return capacity_; }

    /** POLLIN-shaped readiness: a read would not block (data buffered,
     * or EOF/closure makes it complete immediately). */
    bool readable() const
    {
        return !buf_.empty() || writerClosed_ || readerClosed_;
    }

    /** POLLOUT-shaped readiness: a write would make progress (buffer
     * space free, or reader gone so it fails fast with EPIPE). */
    bool writable() const
    {
        return buf_.size() < capacity_ || readerClosed_ || writerClosed_;
    }

    /**
     * One-shot readiness watchers (the poll trap's parking hook): fires
     * once, as soon as the matching readiness predicate holds —
     * immediately when it already does, otherwise from the pump pass
     * that makes it true. Watchers must tolerate firing spuriously late
     * (the poller re-evaluates readiness itself).
     */
    void watchReadable(std::function<void()> fn);
    void watchWritable(std::function<void()> fn);

    /// Experiment counters.
    uint64_t bytesTransferred() const { return bytesTransferred_; }
    uint64_t backpressureStalls() const { return stalls_; }
    /** Bytes moved window-to-window (writer span memcpy'd straight into
     * a parked reader span, no deque transit) — the deferred-CQE
     * zero-copy leg. */
    uint64_t spanToSpanBytes() const { return spanToSpanBytes_; }

  private:
    struct ReadWaiter
    {
        size_t maxlen;     // == span.len for span-shaped waiters
        bfs::DataCb cb;    // buffer-shaped completion
        bfs::ByteSpan span; // span-shaped destination (caller-pinned)
        bfs::SizeCb scb;   // span-shaped completion
        bool spanShaped() const { return static_cast<bool>(scb); }
    };
    struct WriteWaiter
    {
        bfs::Buffer data;       // buffer-shaped source (owned)
        bfs::ConstByteSpan src; // span-shaped source (caller-pinned)
        size_t off;
        size_t total;
        bfs::SizeCb cb;
        bool span_shaped = false;
        const uint8_t *bytes() const
        {
            return span_shaped ? src.data : data.data();
        }
    };

    void pump();
    void fireWatchers();
    /** Serve parked readers directly from a source window; returns bytes
     * consumed. Callbacks are invoked with no loop state held.
     * `src_is_span` marks the source as a caller-pinned window, so
     * window-to-window transfers can be counted. */
    size_t serveReadersFrom(const uint8_t *data, size_t len,
                            bool src_is_span);

    size_t capacity_;
    std::deque<uint8_t> buf_;
    std::deque<ReadWaiter> readWaiters_;
    std::deque<WriteWaiter> writeWaiters_;
    std::vector<std::function<void()>> readWatchers_;
    std::vector<std::function<void()>> writeWatchers_;
    bool readerClosed_ = false;
    bool writerClosed_ = false;
    bool pumping_ = false;
    uint64_t bytesTransferred_ = 0;
    uint64_t stalls_ = 0;
    uint64_t spanToSpanBytes_ = 0;
};

using PipePtr = std::shared_ptr<Pipe>;

/** One end of a pipe, exposed as a file descriptor. */
class PipeEndFile : public KFile
{
  public:
    PipeEndFile(PipePtr pipe, bool reader)
        : pipe_(std::move(pipe)), reader_(reader)
    {
    }

    const char *kind() const override
    {
        return reader_ ? "pipe:r" : "pipe:w";
    }

    /** Pipe span ops move data through the caller's window directly
     * (window-to-window when the peer is span-shaped, deque<->window
     * otherwise) — never via an intermediate bfs::Buffer. */
    bool spanIoDirect() const override { return true; }

    void read(size_t maxlen, bfs::DataCb cb) override
    {
        if (!reader_) {
            cb(EBADF, nullptr);
            return;
        }
        pipe_->read(maxlen, std::move(cb));
    }

    void readInto(bfs::ByteSpan dst, bfs::SizeCb cb) override
    {
        if (!reader_) {
            cb(EBADF, 0);
            return;
        }
        pipe_->readInto(dst, std::move(cb));
    }

    void write(bfs::Buffer data, bfs::SizeCb cb) override
    {
        if (reader_) {
            cb(EBADF, 0);
            return;
        }
        pipe_->write(std::move(data), std::move(cb));
    }

    void writeFrom(bfs::ConstByteSpan src, bfs::SizeCb cb) override
    {
        if (reader_) {
            cb(EBADF, 0);
            return;
        }
        pipe_->writeFrom(src, std::move(cb));
    }

    PipePtr pipe() const { return pipe_; }
    bool isReader() const { return reader_; }

  protected:
    void onLastClose() override
    {
        if (reader_)
            pipe_->closeReader();
        else
            pipe_->closeWriter();
    }

  private:
    PipePtr pipe_;
    bool reader_;
};

} // namespace kernel
} // namespace browsix
