/**
 * @file
 * The browser cost model: where the paper's numbers come from.
 *
 * Mechanisms (copying, queueing, waking) are implemented for real in this
 * substrate; engine costs that a 2016 browser adds on top are charged via
 * this model. Profiles are calibrated against the paper's measurements:
 *   - message passing is ~3 orders of magnitude slower than a syscall (§6);
 *   - Chrome serves the meme list request in ~9 ms vs Firefox ~6 ms (§5.2);
 *   - Node startup (bundle parse) dominates Figure 9's utility times.
 */
#pragma once

#include <cstddef>
#include <string>

namespace browsix {
namespace jsvm {

struct BrowserProfile
{
    std::string name;
    /// Fixed overhead charged per postMessage (sender side), microseconds.
    double postMessageUs = 0;
    /// Structured-clone copy cost per KiB transferred.
    double cloneUsPerKb = 0;
    /// Cost of constructing a Web Worker (thread + isolate + script
    /// evaluation; tens of ms for multi-MB bundles in 2016 browsers).
    double workerSpawnUs = 0;
    /// Script parse/JIT cost per KiB of loaded bundle.
    double parseUsPerKb = 0;
    /// JS-vs-native compute factor (informational; some code paths use
    /// genuine JS-semantics implementations instead).
    double jsComputeFactor = 1;
    /// Emterpreter-vs-asm.js factor for interpreted C code.
    double emterpreterFactor = 1;

    static const BrowserProfile &chrome2016();
    static const BrowserProfile &firefox2016();
    /// All-zero costs; used by unit tests and functional examples.
    static const BrowserProfile &fast();
};

/**
 * Charges simulated time. Short charges spin (accurate at the tens of
 * microseconds the message-path needs); long charges sleep.
 */
class CostModel
{
  public:
    explicit CostModel(BrowserProfile p) : profile_(std::move(p)) {}

    const BrowserProfile &profile() const { return profile_; }

    /** postMessage of a payload of the given structured-clone size. */
    void chargeMessage(size_t bytes) const;
    /** Worker construction. */
    void chargeSpawn() const;
    /** Parsing/JITting a script bundle of the given size. */
    void chargeParse(size_t bytes) const;
    /** Arbitrary engine-time charge in microseconds. */
    void charge(double us) const;

  private:
    BrowserProfile profile_;
};

} // namespace jsvm
} // namespace browsix
