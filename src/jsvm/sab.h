/**
 * @file
 * SharedArrayBuffer and Atomics, per the ECMAScript Shared Memory and
 * Atomics specification the paper relies on for synchronous system calls.
 *
 * A process performing a synchronous syscall sends a message to the kernel
 * and then blocks in Atomics::wait on an agreed-upon word of its heap; the
 * kernel writes return values into the heap and wakes it with
 * Atomics::notify. InterruptToken models worker termination: terminating a
 * worker wakes any Atomics.wait it is blocked in.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

namespace browsix {
namespace jsvm {

class Fiber;

/**
 * Cooperative cancellation token owned by each Worker.
 *
 * Blocking primitives (Atomics::wait, runtime parking lots) register a
 * waker; Worker::terminate() interrupts the token, which invokes all
 * wakers so blocked threads can unwind.
 */
class InterruptToken
{
  public:
    using Waker = std::function<void()>;

    /** Mark interrupted and invoke all registered wakers. */
    void interrupt();

    bool interrupted() const { return flag_.load(std::memory_order_acquire); }

    /** Register a waker; returns an id for removal. */
    uint64_t addWaker(Waker w);

    /**
     * Unregister a waker. Blocks until any in-flight interrupt() pass has
     * finished invoking its snapshot of the wakers, so the caller may
     * destroy state the waker closure references as soon as this returns.
     */
    void removeWaker(uint64_t id);

  private:
    std::atomic<bool> flag_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
    int invokingPasses_ = 0; // concurrent interrupt() passes in flight
    uint64_t nextId_ = 1;
    std::vector<std::pair<uint64_t, Waker>> wakers_;
};

/** Thrown inside a worker's threads when the worker has been terminated. */
struct WorkerTerminated
{
};

/**
 * A byte buffer shared between contexts without copying.
 *
 * Structured clone passes these by reference; Atomics operate on aligned
 * int32 cells within the buffer.
 */
class SharedArrayBuffer
{
  public:
    explicit SharedArrayBuffer(size_t bytes);

    uint8_t *data() { return reinterpret_cast<uint8_t *>(words_.get()); }
    const uint8_t *data() const
    {
        return reinterpret_cast<const uint8_t *>(words_.get());
    }
    size_t size() const { return bytes_; }

    /** The int32 cell at byte offset off (must be 4-aligned, in range). */
    std::atomic<int32_t> &cell(size_t byte_off);

  private:
    friend class Atomics;

    struct Waiter
    {
        size_t offset;
        bool woken = false;
        bool interrupted = false;
        Fiber *fiber = nullptr; ///< set when the waiter is a parked fiber
    };

    size_t bytes_;
    std::unique_ptr<std::atomic<int32_t>[]> words_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::list<Waiter *> waiters_;
};

/** Result of Atomics::wait, mirroring the JS API ("ok"/"not-equal"/ ...). */
enum class WaitResult { Ok, NotEqual, TimedOut, Interrupted };

/**
 * Single-producer/single-consumer ring-buffer index pair over two int32
 * cells of a SharedArrayBuffer — the primitive under the io_uring-style
 * syscall rings (see runtime/syscall_ring.h).
 *
 * head and tail are free-running unsigned counters (they wrap at 2^32);
 * an entry index maps to a slot via slot(). The producer writes a slot's
 * payload with plain stores, then publish()es; the consumer reads tail
 * first, so the seq-cst tail store/load pair orders payload access —
 * exactly the SharedArrayBuffer + Atomics discipline a JS engine offers.
 */
class RingIndices
{
  public:
    /** capacity must be a power of two; offsets must be 4-aligned. */
    RingIndices(SharedArrayBuffer &sab, size_t head_off, size_t tail_off,
                uint32_t capacity);

    uint32_t head() const;
    uint32_t tail() const;
    /** Entries published and not yet consumed. */
    uint32_t count() const { return tail() - head(); }
    bool empty() const { return count() == 0; }
    bool full() const { return count() >= capacity_; }
    uint32_t capacity() const { return capacity_; }
    uint32_t slot(uint32_t index) const { return index & (capacity_ - 1); }

    /** Producer: expose entry at tail() (write payload first), tail++. */
    void publish();
    /** Consumer: release the slot at head() (read payload first), head++. */
    void consume();

  private:
    SharedArrayBuffer &sab_;
    size_t headOff_;
    size_t tailOff_;
    uint32_t capacity_;
};

class Atomics
{
  public:
    static int32_t load(SharedArrayBuffer &sab, size_t byte_off);
    static void store(SharedArrayBuffer &sab, size_t byte_off, int32_t v);
    static int32_t add(SharedArrayBuffer &sab, size_t byte_off, int32_t v);
    static int32_t compareExchange(SharedArrayBuffer &sab, size_t byte_off,
                                   int32_t expected, int32_t desired);

    /**
     * Block until notified on byte_off (or timeout / interruption).
     *
     * @param expected return NotEqual immediately unless cell == expected.
     * @param timeout_us negative means wait forever.
     * @param token optional; when interrupted, wait returns Interrupted.
     */
    static WaitResult wait(SharedArrayBuffer &sab, size_t byte_off,
                           int32_t expected, int64_t timeout_us = -1,
                           InterruptToken *token = nullptr);

    /** Wake up to count waiters on byte_off; returns number woken. */
    static int notify(SharedArrayBuffer &sab, size_t byte_off,
                      int count = INT32_MAX);
};

} // namespace jsvm
} // namespace browsix
