#include "jsvm/sab.h"

#include <chrono>

#include "jsvm/fiber.h"
#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

void
InterruptToken::interrupt()
{
    flag_.store(true, std::memory_order_release);
    // Invoke a snapshot of the wakers without holding mutex_ (a waker may
    // take other locks whose holders call addWaker). invoking_ keeps
    // removeWaker from returning mid-pass: a waker closure may reference
    // the remover's stack, which it destroys as soon as removeWaker
    // returns.
    std::vector<std::pair<uint64_t, Waker>> wakers;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        invokingPasses_++;
        wakers = wakers_;
    }
    for (auto &[id, w] : wakers)
        w();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        invokingPasses_--;
    }
    cv_.notify_all();
}

uint64_t
InterruptToken::addWaker(Waker w)
{
    std::lock_guard<std::mutex> lk(mutex_);
    uint64_t id = nextId_++;
    wakers_.emplace_back(id, std::move(w));
    return id;
}

void
InterruptToken::removeWaker(uint64_t id)
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (auto it = wakers_.begin(); it != wakers_.end(); ++it) {
        if (it->first == id) {
            wakers_.erase(it);
            break;
        }
    }
    // An interrupt() pass may still hold a copy of this waker; wait for
    // every in-flight pass to finish before letting the caller free what
    // the waker touches.
    cv_.wait(lk, [this]() { return invokingPasses_ == 0; });
}

RingIndices::RingIndices(SharedArrayBuffer &sab, size_t head_off,
                         size_t tail_off, uint32_t capacity)
    : sab_(sab), headOff_(head_off), tailOff_(tail_off), capacity_(capacity)
{
    if (capacity == 0 || (capacity & (capacity - 1)) != 0)
        panic("RingIndices: capacity must be a power of two");
}

uint32_t
RingIndices::head() const
{
    return static_cast<uint32_t>(Atomics::load(sab_, headOff_));
}

uint32_t
RingIndices::tail() const
{
    return static_cast<uint32_t>(Atomics::load(sab_, tailOff_));
}

void
RingIndices::publish()
{
    Atomics::store(sab_, tailOff_, static_cast<int32_t>(tail() + 1));
}

void
RingIndices::consume()
{
    Atomics::store(sab_, headOff_, static_cast<int32_t>(head() + 1));
}

SharedArrayBuffer::SharedArrayBuffer(size_t bytes)
    : bytes_(bytes), words_(new std::atomic<int32_t>[(bytes + 3) / 4])
{
    for (size_t i = 0; i < (bytes + 3) / 4; i++)
        words_[i].store(0, std::memory_order_relaxed);
}

std::atomic<int32_t> &
SharedArrayBuffer::cell(size_t byte_off)
{
    if (byte_off % 4 != 0 || byte_off + 4 > bytes_)
        panic("SharedArrayBuffer: misaligned or out-of-range atomic access");
    return words_[byte_off / 4];
}

int32_t
Atomics::load(SharedArrayBuffer &sab, size_t byte_off)
{
    return sab.cell(byte_off).load(std::memory_order_seq_cst);
}

void
Atomics::store(SharedArrayBuffer &sab, size_t byte_off, int32_t v)
{
    sab.cell(byte_off).store(v, std::memory_order_seq_cst);
}

int32_t
Atomics::add(SharedArrayBuffer &sab, size_t byte_off, int32_t v)
{
    return sab.cell(byte_off).fetch_add(v, std::memory_order_seq_cst);
}

int32_t
Atomics::compareExchange(SharedArrayBuffer &sab, size_t byte_off,
                         int32_t expected, int32_t desired)
{
    int32_t e = expected;
    sab.cell(byte_off).compare_exchange_strong(e, desired,
                                               std::memory_order_seq_cst);
    return e;
}

WaitResult
Atomics::wait(SharedArrayBuffer &sab, size_t byte_off, int32_t expected,
              int64_t timeout_us, InterruptToken *token)
{
    std::unique_lock<std::mutex> lk(sab.mutex_);
    if (sab.cell(byte_off).load(std::memory_order_seq_cst) != expected)
        return WaitResult::NotEqual;
    if (token && token->interrupted())
        return WaitResult::Interrupted;

    // A fiber waiter parks (costing zero threads) instead of blocking the
    // host thread; notify()/interrupt wake it through the parker protocol.
    Fiber *fiber = Fiber::current();
    if (fiber && timeout_us >= 0)
        panic("Atomics::wait: finite timeouts are unsupported in fiber "
              "context (no caller needs them; add timer plumbing first)");

    SharedArrayBuffer::Waiter w{byte_off};
    w.fiber = fiber;
    sab.waiters_.push_back(&w);

    uint64_t waker_id = 0;
    if (token) {
        waker_id = token->addWaker([&sab, &w]() {
            std::lock_guard<std::mutex> lk2(sab.mutex_);
            w.interrupted = true;
            if (w.fiber)
                w.fiber->wake();
            sab.cv_.notify_all();
        });
    }

    auto cleanup = [&]() {
        sab.waiters_.remove(&w);
        if (token) {
            lk.unlock();
            token->removeWaker(waker_id);
            lk.lock();
        }
    };

    int64_t deadline =
        timeout_us < 0 ? -1 : nowUs() + timeout_us;
    WaitResult result;
    for (;;) {
        if (w.woken) {
            result = WaitResult::Ok;
            break;
        }
        if (w.interrupted || (token && token->interrupted())) {
            result = WaitResult::Interrupted;
            break;
        }
        if (fiber) {
            lk.unlock();
            Fiber::park();
            lk.lock();
        } else if (deadline >= 0) {
            int64_t now = nowUs();
            if (now >= deadline) {
                result = WaitResult::TimedOut;
                break;
            }
            sab.cv_.wait_for(lk, std::chrono::microseconds(deadline - now));
        } else {
            sab.cv_.wait(lk);
        }
    }
    cleanup();
    return result;
}

int
Atomics::notify(SharedArrayBuffer &sab, size_t byte_off, int count)
{
    std::lock_guard<std::mutex> lk(sab.mutex_);
    int woken = 0;
    for (auto *w : sab.waiters_) {
        if (woken >= count)
            break;
        if (w->offset == byte_off && !w->woken) {
            w->woken = true;
            if (w->fiber)
                w->fiber->wake();
            woken++;
        }
    }
    if (woken > 0)
        sab.cv_.notify_all();
    return woken;
}

} // namespace jsvm
} // namespace browsix
