/**
 * @file
 * The browser: the main JavaScript context plus the worker machinery.
 *
 * The Browsix kernel runs "in the main browser context" — i.e. on this
 * object's main event loop, which the embedding application pumps (just as
 * a web page yields to the browser's event loop).
 */
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "jsvm/blob.h"
#include "jsvm/cost_model.h"
#include "jsvm/event_loop.h"
#include "jsvm/worker.h"

namespace browsix {
namespace jsvm {

class Browser
{
  public:
    explicit Browser(BrowserProfile profile = BrowserProfile::fast());
    ~Browser();

    EventLoop &mainLoop() { return mainLoop_; }
    const CostModel &costs() const { return costs_; }
    BlobRegistry &blobs() { return blobs_; }

    /**
     * Install the worker-pool executor. Workers created while one is set
     * run in pooled mode (see worker.h); set before the first createWorker.
     * Workers capture the shared_ptr at start, so the executor outlives
     * every worker scheduled on it.
     */
    void setExecutor(std::shared_ptr<WorkerExecutor> exec);
    std::shared_ptr<WorkerExecutor> executor() const;

    /**
     * Construct a Worker from a blob: URL (charging spawn + parse costs).
     *
     * @param url blob URL of the worker script (the executable's bytes).
     * @param main the bootstrap run on the worker thread with the bytes.
     */
    std::shared_ptr<Worker> createWorker(const std::string &url,
                                         Worker::Main main);

    /**
     * Pump the main loop on the calling thread until pred() holds.
     *
     * @return true if pred became true before timeout_ms elapsed.
     */
    bool runUntil(const std::function<bool()> &pred, int64_t timeout_ms = 30000);

    /** Terminate all live workers (page unload). */
    void terminateAll();

  private:
    CostModel costs_;
    EventLoop mainLoop_;
    BlobRegistry blobs_;

    mutable std::mutex mutex_;
    std::shared_ptr<WorkerExecutor> executor_;
    uint64_t nextWorkerId_ = 1;
    std::vector<std::weak_ptr<Worker>> workers_;
};

} // namespace jsvm
} // namespace browsix
