#include "jsvm/value.h"

#include <sstream>

#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

namespace {
const Value kUndefined{};
} // namespace

Value::Type
Value::type() const
{
    switch (v_.index()) {
      case 0: return Type::Undefined;
      case 1: return Type::Null;
      case 2: return Type::Bool;
      case 3: return Type::Number;
      case 4: return Type::String;
      case 5: return Type::Bytes;
      case 6: return Type::Shared;
      case 7: return Type::Array;
      case 8: return Type::Object;
    }
    panic("Value: corrupt variant");
}

bool
Value::asBool() const
{
    if (auto *b = std::get_if<bool>(&v_))
        return *b;
    panic("Value: not a bool: " + toString());
}

double
Value::asNumber() const
{
    if (auto *d = std::get_if<double>(&v_))
        return *d;
    panic("Value: not a number: " + toString());
}

const std::string &
Value::asString() const
{
    if (auto *s = std::get_if<std::string>(&v_))
        return *s;
    panic("Value: not a string: " + toString());
}

const Value::BytesPtr &
Value::asBytes() const
{
    if (auto *b = std::get_if<BytesPtr>(&v_))
        return *b;
    panic("Value: not bytes: " + toString());
}

const SabPtr &
Value::asShared() const
{
    if (auto *s = std::get_if<SabPtr>(&v_))
        return *s;
    panic("Value: not a SharedArrayBuffer");
}

const Value::Array &
Value::asArray() const
{
    if (auto *a = std::get_if<Array>(&v_))
        return *a;
    panic("Value: not an array: " + toString());
}

Value::Array &
Value::asArray()
{
    if (auto *a = std::get_if<Array>(&v_))
        return *a;
    panic("Value: not an array");
}

const Value::Object &
Value::asObject() const
{
    if (auto *o = std::get_if<Object>(&v_))
        return *o;
    panic("Value: not an object: " + toString());
}

Value::Object &
Value::asObject()
{
    if (auto *o = std::get_if<Object>(&v_))
        return *o;
    panic("Value: not an object");
}

const Value &
Value::get(const std::string &key) const
{
    if (auto *o = std::get_if<Object>(&v_)) {
        auto it = o->find(key);
        if (it != o->end())
            return it->second;
    }
    return kUndefined;
}

void
Value::set(const std::string &key, Value v)
{
    if (isUndefined())
        v_ = Object{};
    asObject()[key] = std::move(v);
}

const Value &
Value::at(size_t i) const
{
    if (auto *a = std::get_if<Array>(&v_)) {
        if (i < a->size())
            return (*a)[i];
    }
    return kUndefined;
}

void
Value::push(Value v)
{
    if (isUndefined())
        v_ = Array{};
    asArray().push_back(std::move(v));
}

size_t
Value::size() const
{
    if (auto *a = std::get_if<Array>(&v_))
        return a->size();
    if (auto *o = std::get_if<Object>(&v_))
        return o->size();
    if (auto *b = std::get_if<BytesPtr>(&v_))
        return (*b) ? (*b)->size() : 0;
    if (auto *s = std::get_if<std::string>(&v_))
        return s->size();
    return 0;
}

Value
Value::clone() const
{
    switch (type()) {
      case Type::Undefined:
      case Type::Null:
      case Type::Bool:
      case Type::Number:
      case Type::String:
        return *this; // immutable reprs: value copy is a deep copy
      case Type::Bytes: {
        const auto &b = asBytes();
        return b ? Value(std::make_shared<Bytes>(*b))
                 : Value(BytesPtr{});
      }
      case Type::Shared:
        return *this; // shared by reference, per spec
      case Type::Array: {
        Array out;
        out.reserve(asArray().size());
        for (const auto &v : asArray())
            out.push_back(v.clone());
        return Value(std::move(out));
      }
      case Type::Object: {
        Object out;
        for (const auto &[k, v] : asObject())
            out.emplace(k, v.clone());
        return Value(std::move(out));
      }
    }
    panic("Value::clone: unreachable");
}

size_t
Value::approxByteSize() const
{
    switch (type()) {
      case Type::Undefined:
      case Type::Null:
      case Type::Bool:
        return 1;
      case Type::Number:
        return 8;
      case Type::String:
        return asString().size() + 4;
      case Type::Bytes:
        return (asBytes() ? asBytes()->size() : 0) + 4;
      case Type::Shared:
        return 8; // a reference, not a copy
      case Type::Array: {
        size_t n = 4;
        for (const auto &v : asArray())
            n += v.approxByteSize();
        return n;
      }
      case Type::Object: {
        size_t n = 4;
        for (const auto &[k, v] : asObject())
            n += k.size() + v.approxByteSize();
        return n;
      }
    }
    return 0;
}

std::string
Value::toString() const
{
    std::ostringstream os;
    switch (type()) {
      case Type::Undefined: os << "undefined"; break;
      case Type::Null: os << "null"; break;
      case Type::Bool: os << (asBool() ? "true" : "false"); break;
      case Type::Number: os << asNumber(); break;
      case Type::String: os << '"' << asString() << '"'; break;
      case Type::Bytes:
        os << "<bytes:" << (asBytes() ? asBytes()->size() : 0) << ">";
        break;
      case Type::Shared: os << "<sab>"; break;
      case Type::Array: {
        os << "[";
        bool first = true;
        for (const auto &v : asArray()) {
            if (!first)
                os << ",";
            first = false;
            os << v.toString();
        }
        os << "]";
        break;
      }
      case Type::Object: {
        os << "{";
        bool first = true;
        for (const auto &[k, v] : asObject()) {
            if (!first)
                os << ",";
            first = false;
            os << k << ":" << v.toString();
        }
        os << "}";
        break;
      }
    }
    return os.str();
}

} // namespace jsvm
} // namespace browsix
