#include "jsvm/cost_model.h"

#include <chrono>
#include <thread>

#include "jsvm/test_clock.h"
#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

const BrowserProfile &
BrowserProfile::chrome2016()
{
    static const BrowserProfile p{
        /*name=*/"chrome-2016",
        /*postMessageUs=*/450,
        /*cloneUsPerKb=*/5,
        /*workerSpawnUs=*/25000,
        /*parseUsPerKb=*/3.0,
        /*jsComputeFactor=*/8,
        /*emterpreterFactor=*/4,
    };
    return p;
}

const BrowserProfile &
BrowserProfile::firefox2016()
{
    static const BrowserProfile p{
        /*name=*/"firefox-2016",
        /*postMessageUs=*/300,
        /*cloneUsPerKb=*/4,
        /*workerSpawnUs=*/20000,
        /*parseUsPerKb=*/2.5,
        /*jsComputeFactor=*/9,
        /*emterpreterFactor=*/4.5,
    };
    return p;
}

const BrowserProfile &
BrowserProfile::fast()
{
    static const BrowserProfile p{/*name=*/"fast"};
    return p;
}

namespace {

// Spin for short charges (sleep granularity is too coarse below ~1 ms).
void
burn(double us)
{
    if (us <= 0)
        return;
    // Under a virtual clock, charge the cost as virtual time: spinning on
    // a frozen nowUs() would never terminate, and sleeping would make the
    // test wall-clock-dependent again.
    if (TestClock *c = TestClock::active()) {
        c->advanceUs(static_cast<int64_t>(us));
        return;
    }
    if (us < 1000) {
        int64_t end = nowUs() + static_cast<int64_t>(us);
        while (nowUs() < end) {
            // busy-wait; charges at this scale are tens of microseconds
        }
    } else {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(us)));
    }
}

} // namespace

void
CostModel::chargeMessage(size_t bytes) const
{
    burn(profile_.postMessageUs +
         profile_.cloneUsPerKb * (static_cast<double>(bytes) / 1024.0));
}

void
CostModel::chargeSpawn() const
{
    burn(profile_.workerSpawnUs);
}

void
CostModel::chargeParse(size_t bytes) const
{
    burn(profile_.parseUsPerKb * (static_cast<double>(bytes) / 1024.0));
}

void
CostModel::charge(double us) const
{
    burn(us);
}

} // namespace jsvm
} // namespace browsix
