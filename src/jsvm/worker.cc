#include "jsvm/worker.h"

#include "jsvm/browser.h"
#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

void
WorkerScope::postMessage(const Value &v)
{
    Worker &w = worker_;
    w.browser_.costs().chargeMessage(v.approxByteSize());
    Value copy = v.clone();
    auto self = w.shared_from_this();
    w.browser_.mainLoop().post([self, copy = std::move(copy)]() {
        std::function<void(Value)> h;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            h = self->parentHandler_;
        }
        if (h)
            h(copy);
    });
}

void
WorkerScope::setOnMessage(std::function<void(Value)> handler)
{
    std::lock_guard<std::mutex> lk(worker_.mutex_);
    worker_.workerHandler_ = std::move(handler);
}

EventLoop &
WorkerScope::loop()
{
    return worker_.loop_;
}

InterruptToken &
WorkerScope::token()
{
    return worker_.token_;
}

const CostModel &
WorkerScope::costs() const
{
    return worker_.browser_.costs();
}

void
WorkerScope::startGuest(std::function<void()> fn)
{
    worker_.startGuest(std::move(fn));
}

bool
WorkerScope::pooled() const
{
    return worker_.pooled();
}

void
WorkerScope::atExit(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lk(worker_.mutex_);
    worker_.atExit_.push_back(std::move(fn));
}

Worker::Worker(Browser &browser, uint64_t id,
               std::shared_ptr<const std::vector<uint8_t>> script, Main main)
    : browser_(browser), id_(id), script_(std::move(script)),
      main_(std::move(main))
{
}

void
Worker::start()
{
    scope_ = std::make_unique<WorkerScope>(*this);
    if (auto exec = browser_.executor()) {
        pooled_ = true;
        executor_ = std::move(exec);
        std::weak_ptr<Worker> wself = weak_from_this();
        loop_.setWakeHook([wself]() {
            if (auto s = wself.lock())
                s->signalWork();
        });
        // The bootstrap (script evaluation) runs in the first step; spawn
        // is a queue push, not a thread launch.
        signalWork();
        return;
    }
    auto self = shared_from_this();
    thread_ = std::thread([self]() {
        // Script evaluation: parse cost was charged by the creator; the
        // bootstrap installs onmessage and returns.
        if (self->main_)
            self->main_(*self->scope_, self->script_);
        self->loop_.run();
        // Loop stopped (terminate): unwind worker-local threads.
        std::vector<std::function<void()>> fns;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            fns.swap(self->atExit_);
        }
        for (auto &fn : fns)
            fn();
    });
}

void
Worker::startGuest(std::function<void()> fn)
{
    if (!pooled_) {
        auto th = std::make_shared<std::thread>();
        std::lock_guard<std::mutex> lk(mutex_);
        if (terminated_)
            return; // dropped, like a queued-but-killed guest
        // Register the join and launch in ONE critical section: teardown
        // swaps atExit_ under mutex_, so it either sees nothing (guest
        // dropped above) or a registered join whose handle was already
        // assigned — never a half-constructed thread it fails to join.
        atExit_.push_back([th]() {
            if (th->joinable())
                th->join();
        });
        *th = std::thread([fn = std::move(fn)]() {
            try {
                fn();
            } catch (const WorkerTerminated &) {
            }
        });
        return;
    }
    std::weak_ptr<Worker> wself = weak_from_this();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (terminated_)
            return; // dropped, like a queued-but-killed guest
        uint64_t fid = nextFiberId_++;
        auto g = std::make_shared<GuestFiber>();
        g->id = fid;
        g->fiber = std::make_unique<Fiber>(
            std::move(fn), [wself, fid]() {
                if (auto s = wself.lock())
                    s->fiberWoken(fid);
            });
        fibers_.push_back(std::move(g));
    }
    signalWork();
}

void
Worker::fiberWoken(uint64_t fiber_id)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto &g : fibers_) {
            if (g->id == fiber_id) {
                g->runnable = true;
                break;
            }
        }
    }
    signalWork();
}

void
Worker::signalWork()
{
    if (!pooled_)
        return; // legacy: the dedicated thread's loop cv does the waking
    auto self = weak_from_this().lock();
    if (!self)
        return; // destructor context: ~Worker unwinds inline
    for (;;) {
        SchedState s = schedState_.load(std::memory_order_seq_cst);
        if (s == SchedState::Queued || s == SchedState::Dirty)
            return;
        if (s == SchedState::Idle) {
            SchedState e = SchedState::Idle;
            if (schedState_.compare_exchange_strong(
                    e, SchedState::Queued, std::memory_order_seq_cst)) {
                executor_->enqueue(std::move(self));
                return;
            }
            continue;
        }
        // Running: coalesce into a dirty flag; finishStep re-enqueues.
        SchedState e = SchedState::Running;
        if (schedState_.compare_exchange_strong(e, SchedState::Dirty,
                                                std::memory_order_seq_cst))
            return;
    }
}

void
Worker::step()
{
    {
        SchedState e = SchedState::Queued;
        if (!schedState_.compare_exchange_strong(e, SchedState::Running,
                                                 std::memory_order_seq_cst)) {
            // Not ours to run. Every queue entry corresponds to exactly
            // one Idle->Queued (signalWork) or ->Queued (finishStep)
            // transition, so a failed CAS means another thread owns the
            // quantum right now; proceeding would resume the same fiber
            // on two host stacks. Any work that arrived meanwhile is
            // covered by that step's dirty-flag re-enqueue.
            return;
        }
    }
    if (terminated()) {
        teardownFibers();
    } else {
        if (!booted_) {
            booted_ = true;
            if (main_)
                main_(*scope_, script_);
        }
        loop_.pump();
        resumeRunnableFibers();
    }
    finishStep();
}

void
Worker::resumeRunnableFibers()
{
    std::vector<std::shared_ptr<GuestFiber>> run;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto &g : fibers_)
            if (g->runnable)
                run.push_back(g);
    }
    for (auto &g : run) {
        if (terminated())
            return; // mid-step terminate: the teardown step unwinds
        bool fin = g->fiber->resume();
        std::lock_guard<std::mutex> lk(mutex_);
        if (fin) {
            for (auto it = fibers_.begin(); it != fibers_.end(); ++it) {
                if (it->get() == g.get()) {
                    fibers_.erase(it);
                    break;
                }
            }
        } else if (g->fiber->wantsPark()) {
            // Commit under the mutex: a racing wake() either beats the CAS
            // (fiber stays runnable) or blocks in fiberWoken until the
            // runnable=false store below is visible. No lost wakeups.
            if (g->fiber->commitPark())
                g->runnable = false;
        }
        // else: cooperative yield — stays runnable, next step resumes it.
    }
}

void
Worker::teardownFibers()
{
    if (tornDown_)
        return;
    // Unwind every live guest: the interrupt token has been tripped, so
    // each resumed fiber throws WorkerTerminated at its blocking site. A
    // fiber that never started (spawned then killed before its first
    // quantum) is dropped without running.
    for (int pass = 0;; pass++) {
        std::vector<std::shared_ptr<GuestFiber>> live;
        {
            std::lock_guard<std::mutex> lk(mutex_);
            live = fibers_;
        }
        if (live.empty())
            break;
        if (pass > 1024)
            panic("Worker: guest fibers failed to unwind on terminate");
        for (auto &g : live) {
            if (!g->fiber->finished() && g->fiber->started()) {
                g->fiber->wake();
                g->fiber->resume();
            }
        }
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = fibers_.begin(); it != fibers_.end();) {
            if ((*it)->fiber->finished() || !(*it)->fiber->started())
                it = fibers_.erase(it);
            else
                ++it;
        }
    }
    std::vector<std::function<void()>> fns;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        fns.swap(atExit_);
    }
    for (auto &fn : fns)
        fn();
    tornDown_ = true;
}

bool
Worker::hasPendingWork()
{
    if (terminated())
        return !tornDown_;
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto &g : fibers_)
        if (g->runnable)
            return true;
    return false;
}

void
Worker::finishStep()
{
    bool more = hasPendingWork();
    for (;;) {
        SchedState s = schedState_.load(std::memory_order_seq_cst);
        if (s == SchedState::Dirty) {
            schedState_.store(SchedState::Queued, std::memory_order_seq_cst);
            executor_->enqueue(shared_from_this());
            return;
        }
        if (s == SchedState::Running) {
            if (more) {
                schedState_.store(SchedState::Queued,
                                  std::memory_order_seq_cst);
                executor_->enqueue(shared_from_this());
                return;
            }
            SchedState e = SchedState::Running;
            if (schedState_.compare_exchange_strong(
                    e, SchedState::Idle, std::memory_order_seq_cst)) {
                // Going idle with a pending loop timer: ask the executor
                // to bring us back when it is due.
                if (!terminated()) {
                    int64_t due = loop_.nextTimerDueUs();
                    if (due >= 0)
                        executor_->scheduleTimer(shared_from_this(), due);
                }
                return;
            }
            continue; // raced to Dirty
        }
        if (s == SchedState::Idle) {
            // Unreachable in the pool protocol (step() holds Running for
            // the whole quantum), but never strand runnable work behind a
            // silent return: requeue through the normal wake path.
            if (!more)
                return;
            SchedState e = SchedState::Idle;
            if (schedState_.compare_exchange_strong(
                    e, SchedState::Queued, std::memory_order_seq_cst)) {
                executor_->enqueue(shared_from_this());
                return;
            }
            continue; // a racing signalWork queued us; done
        }
        // Queued while a step is in flight means the single-entry
        // invariant broke — another thread may already be stepping us.
        panic("Worker::finishStep: Queued observed during a step");
    }
}

Worker::RunPhase
Worker::runPhase() const
{
    if (!pooled_)
        return RunPhase::Dedicated;
    switch (schedState_.load(std::memory_order_seq_cst)) {
    case SchedState::Running:
    case SchedState::Dirty:
        return RunPhase::Running;
    case SchedState::Queued:
        return RunPhase::Queued;
    case SchedState::Idle:
    default:
        return RunPhase::Parked;
    }
}

Worker::~Worker()
{
    terminate();
    if (pooled_ && !tornDown_) {
        // No other reference exists (we are the destructor), so no pool
        // thread can be stepping this worker: unwind inline.
        schedState_.store(SchedState::Running, std::memory_order_seq_cst);
        teardownFibers();
    }
}

void
Worker::postMessage(const Value &v)
{
    if (terminated())
        return;
    browser_.costs().chargeMessage(v.approxByteSize());
    Value copy = v.clone();
    auto self = shared_from_this();
    loop_.post([self, copy = std::move(copy)]() {
        std::function<void(Value)> h;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            h = self->workerHandler_;
        }
        if (h)
            h(copy);
    });
}

void
Worker::setOnMessage(std::function<void(Value)> handler)
{
    std::lock_guard<std::mutex> lk(mutex_);
    parentHandler_ = std::move(handler);
}

void
Worker::terminate()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (terminated_)
            return;
        terminated_ = true;
        // Stop delivering messages in either direction.
        parentHandler_ = nullptr;
        workerHandler_ = nullptr;
    }
    token_.interrupt();
    loop_.stop();
    if (pooled_) {
        // Non-blocking: enqueue a final step so a pool thread unwinds the
        // fibers (throwing WorkerTerminated at their park sites).
        signalWork();
        return;
    }
    if (thread_.joinable()) {
        if (thread_.get_id() == std::this_thread::get_id())
            panic("Worker::terminate called from the worker's own thread");
        thread_.join();
    }
}

bool
Worker::terminated() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return terminated_;
}

} // namespace jsvm
} // namespace browsix
