#include "jsvm/worker.h"

#include "jsvm/browser.h"
#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

void
WorkerScope::postMessage(const Value &v)
{
    Worker &w = worker_;
    w.browser_.costs().chargeMessage(v.approxByteSize());
    Value copy = v.clone();
    auto self = w.shared_from_this();
    w.browser_.mainLoop().post([self, copy = std::move(copy)]() {
        std::function<void(Value)> h;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            h = self->parentHandler_;
        }
        if (h)
            h(copy);
    });
}

void
WorkerScope::setOnMessage(std::function<void(Value)> handler)
{
    std::lock_guard<std::mutex> lk(worker_.mutex_);
    worker_.workerHandler_ = std::move(handler);
}

EventLoop &
WorkerScope::loop()
{
    return worker_.loop_;
}

InterruptToken &
WorkerScope::token()
{
    return worker_.token_;
}

const CostModel &
WorkerScope::costs() const
{
    return worker_.browser_.costs();
}

void
WorkerScope::atExit(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lk(worker_.mutex_);
    worker_.atExit_.push_back(std::move(fn));
}

Worker::Worker(Browser &browser, uint64_t id,
               std::shared_ptr<const std::vector<uint8_t>> script, Main main)
    : browser_(browser), id_(id), script_(std::move(script)),
      main_(std::move(main))
{
}

void
Worker::start()
{
    auto self = shared_from_this();
    thread_ = std::thread([self]() {
        WorkerScope scope(*self);
        // Script evaluation: parse cost was charged by the creator; the
        // bootstrap installs onmessage and returns.
        if (self->main_)
            self->main_(scope, self->script_);
        self->loop_.run();
        // Loop stopped (terminate): unwind worker-local threads.
        std::vector<std::function<void()>> fns;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            fns.swap(self->atExit_);
        }
        for (auto &fn : fns)
            fn();
    });
}

Worker::~Worker()
{
    terminate();
}

void
Worker::postMessage(const Value &v)
{
    if (terminated())
        return;
    browser_.costs().chargeMessage(v.approxByteSize());
    Value copy = v.clone();
    auto self = shared_from_this();
    loop_.post([self, copy = std::move(copy)]() {
        std::function<void(Value)> h;
        {
            std::lock_guard<std::mutex> lk(self->mutex_);
            h = self->workerHandler_;
        }
        if (h)
            h(copy);
    });
}

void
Worker::setOnMessage(std::function<void(Value)> handler)
{
    std::lock_guard<std::mutex> lk(mutex_);
    parentHandler_ = std::move(handler);
}

void
Worker::terminate()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (terminated_)
            return;
        terminated_ = true;
        // Stop delivering messages in either direction.
        parentHandler_ = nullptr;
        workerHandler_ = nullptr;
    }
    token_.interrupt();
    loop_.stop();
    if (thread_.joinable()) {
        if (thread_.get_id() == std::this_thread::get_id())
            panic("Worker::terminate called from the worker's own thread");
        thread_.join();
    }
}

bool
Worker::terminated() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return terminated_;
}

} // namespace jsvm
} // namespace browsix
