#include "jsvm/fiber.h"

#include <cstring>
#include <string>
#include <sys/mman.h>
#include <unistd.h>

#include "jsvm/sab.h"
#include "jsvm/util.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BROWSIX_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define BROWSIX_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(BROWSIX_ASAN)
#define BROWSIX_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(BROWSIX_TSAN)
#define BROWSIX_TSAN 1
#endif

#if defined(BROWSIX_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(BROWSIX_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace browsix {
namespace jsvm {

namespace {

thread_local Fiber *tCurrentFiber = nullptr;

size_t
defaultStackBytes()
{
    // Stacks are lazily committed (anonymous mmap), so the cost of a parked
    // guest is the pages it actually touched, not the virtual reservation.
    // Sanitizer builds get more headroom for redzones and shadow frames.
#if defined(BROWSIX_ASAN) || defined(BROWSIX_TSAN)
    return 1024 * 1024;
#else
    return 256 * 1024;
#endif
}

} // namespace

Fiber::Fiber(Fn fn, WakeHook on_wake, size_t stack_bytes)
    : fn_(std::move(fn)), onWake_(std::move(on_wake))
{
    size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    size_t want = stack_bytes ? stack_bytes : defaultStackBytes();
    stackBytes_ = (want + page - 1) & ~(page - 1);
    stackMapBytes_ = stackBytes_ + page; // + low guard page
    void *base = mmap(nullptr, stackMapBytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (base == MAP_FAILED)
        panic("Fiber: mmap of guest stack failed");
    if (mprotect(base, page, PROT_NONE) != 0)
        panic("Fiber: mprotect of guard page failed");
    stackBase_ = static_cast<uint8_t *>(base);
    stackLo_ = stackBase_ + page;
#if defined(BROWSIX_TSAN)
    tsanFiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber()
{
    if (started_ && !finished())
        panic("Fiber: destroyed while suspended mid-execution "
              "(teardown must unwind guests first)");
#if defined(BROWSIX_TSAN)
    if (tsanFiber_)
        __tsan_destroy_fiber(tsanFiber_);
#endif
    if (stackBase_)
        munmap(stackBase_, stackMapBytes_);
}

Fiber *
Fiber::current()
{
    return tCurrentFiber;
}

// Sanitizer handoff discipline: every __tsan_switch_to_fiber /
// __sanitizer_*_switch_fiber call below is written INLINE in the function
// that performs the swapcontext. __tsan_switch_to_fiber redirects the
// per-context shadow call stack immediately, so if the call lived in a
// helper, the helper's return (its __tsan_func_exit) would execute on the
// *target* context and pop a frame from the wrong shadow stack. One frame
// per park/exit cycle is enough: a few thousand guest lifecycles underflow
// the pool thread's shadow stack and libtsan crashes hashing it.

void
Fiber::trampoline()
{
    Fiber *f = tCurrentFiber;
#if defined(BROWSIX_ASAN)
    __sanitizer_finish_switch_fiber(f->asanFakeStack_, &f->asanCallerBottom_,
                                    &f->asanCallerSize_);
    f->asanFakeStack_ = nullptr;
#endif
    try {
        f->fn_();
    } catch (const WorkerTerminated &) {
        // Normal teardown unwind: the owning worker was terminated while
        // this guest was blocked; the park site rethrew to get us here.
    } catch (const std::exception &e) {
        panic(std::string("Fiber: guest escaped with exception: ") + e.what());
    } catch (...) {
        panic("Fiber: guest escaped with unknown exception");
    }
    // Destroy captured state (syscall clients, runtime envs) while still on
    // the guest stack, before the owner considers the fiber dead.
    f->fn_ = nullptr;
    f->finished_.store(true, std::memory_order_release);
    // Final exit: pass nullptr so ASan tears down this fiber's fake stack.
#if defined(BROWSIX_TSAN)
    __tsan_switch_to_fiber(f->tsanCaller_, 0);
#endif
#if defined(BROWSIX_ASAN)
    __sanitizer_start_switch_fiber(nullptr, f->asanCallerBottom_,
                                   f->asanCallerSize_);
#endif
    swapcontext(&f->ctx_, &f->callerCtx_);
    panic("Fiber: resumed a finished fiber");
}

void
Fiber::switchOut()
{
#if defined(BROWSIX_TSAN)
    __tsan_switch_to_fiber(tsanCaller_, 0);
#endif
#if defined(BROWSIX_ASAN)
    __sanitizer_start_switch_fiber(&asanFakeStack_, asanCallerBottom_,
                                   asanCallerSize_);
#endif
    swapcontext(&ctx_, &callerCtx_);
    // Resumed again, possibly on a different host thread.
#if defined(BROWSIX_ASAN)
    __sanitizer_finish_switch_fiber(asanFakeStack_, &asanCallerBottom_,
                                    &asanCallerSize_);
    asanFakeStack_ = nullptr;
#endif
}

bool
Fiber::resume()
{
    if (finished())
        return true;
    if (tCurrentFiber)
        panic("Fiber::resume: nested fibers are not supported");
    parkIntent_ = false;
    if (!started_) {
        started_ = true;
        if (getcontext(&ctx_) != 0)
            panic("Fiber: getcontext failed");
        ctx_.uc_stack.ss_sp = stackLo_;
        ctx_.uc_stack.ss_size = stackBytes_;
        ctx_.uc_link = nullptr; // trampoline never returns; it swaps out
        makecontext(&ctx_, &Fiber::trampoline, 0);
    }
    tCurrentFiber = this;
#if defined(BROWSIX_TSAN)
    tsanCaller_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
#if defined(BROWSIX_ASAN)
    void *host_save = nullptr;
    __sanitizer_start_switch_fiber(&host_save, stackLo_, stackBytes_);
#endif
    swapcontext(&callerCtx_, &ctx_);
#if defined(BROWSIX_ASAN)
    __sanitizer_finish_switch_fiber(host_save, nullptr, nullptr);
#endif
    tCurrentFiber = nullptr;
    return finished();
}

void
Fiber::park()
{
    Fiber *f = tCurrentFiber;
    if (!f)
        panic("Fiber::park called outside a fiber");
    for (;;) {
        if (f->state_.exchange(kIdle, std::memory_order_seq_cst) == kNotified)
            return;
        f->parkIntent_ = true;
        f->switchOut();
        // The scheduler either committed the park (a wake re-ran us) or the
        // commit lost to a racing wake (we are still runnable): both paths
        // re-check for the notification above.
    }
}

void
Fiber::yieldNow()
{
    Fiber *f = tCurrentFiber;
    if (!f)
        panic("Fiber::yieldNow called outside a fiber");
    f->parkIntent_ = false;
    f->switchOut();
}

void
Fiber::maybeYield()
{
    if (tCurrentFiber)
        yieldNow();
}

bool
Fiber::commitPark()
{
    parkIntent_ = false;
    int expect = kIdle;
    return state_.compare_exchange_strong(expect, kParked,
                                          std::memory_order_seq_cst);
}

void
Fiber::wake()
{
    int old = state_.exchange(kNotified, std::memory_order_seq_cst);
    if (old == kParked && onWake_)
        onWake_();
}

void
FiberCv::wait(std::unique_lock<std::mutex> &lk)
{
    Fiber *f = Fiber::current();
    if (!f) {
        cv_.wait(lk);
        return;
    }
    fiberWaiters_.push_back(f);
    lk.unlock();
    Fiber::park();
    lk.lock();
    for (auto it = fiberWaiters_.begin(); it != fiberWaiters_.end(); ++it) {
        if (*it == f) {
            fiberWaiters_.erase(it);
            break;
        }
    }
}

void
FiberCv::notifyAll()
{
    // Caller holds the external mutex, so the list snapshot is stable; a
    // waiter between unlock and park still sees the notification via the
    // parker protocol (wake marks kNotified before the park can commit).
    for (Fiber *f : fiberWaiters_)
        f->wake();
    fiberWaiters_.clear();
    cv_.notify_all();
}

} // namespace jsvm
} // namespace browsix
