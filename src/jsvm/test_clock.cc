#include "jsvm/test_clock.h"

#include <chrono>

#include "jsvm/event_loop.h"
#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

namespace {
std::atomic<TestClock *> gActive{nullptr};
} // namespace

int64_t
nowUs()
{
    if (TestClock *c = gActive.load(std::memory_order_acquire))
        return c->nowUs();
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
}

TestClock::TestClock(int64_t start_us)
    : now_us_(start_us), prev_(gActive.load(std::memory_order_acquire))
{
    gActive.store(this, std::memory_order_release);
}

TestClock::~TestClock()
{
    gActive.store(prev_, std::memory_order_release);
}

TestClock *
TestClock::active()
{
    return gActive.load(std::memory_order_acquire);
}

void
TestClock::advanceUs(int64_t delta_us)
{
    if (delta_us > 0)
        now_us_.fetch_add(delta_us, std::memory_order_acq_rel);
}

size_t
TestClock::pumpUntilIdle(EventLoop &loop, int64_t max_virtual_us)
{
    size_t ran = 0;
    int64_t deadline = nowUs() + max_virtual_us;
    for (;;) {
        ran += loop.pump();
        int64_t due = loop.nextTimerDueUs();
        if (due < 0)
            return ran; // no timers pending; queue already drained
        if (due > deadline)
            return ran; // next timer is past the virtual budget
        if (due > nowUs())
            advanceUs(due - nowUs());
        else
            advanceUs(1); // defensive: guarantee forward progress
    }
}

} // namespace jsvm
} // namespace browsix
