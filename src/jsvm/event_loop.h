/**
 * @file
 * A per-context event loop, the execution model of a JavaScript context.
 *
 * The main browser context and every Web Worker run one of these. Tasks
 * posted from other threads model postMessage delivery; timers model
 * setTimeout. A context never blocks except inside Atomics.wait.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

namespace browsix {
namespace jsvm {

class EventLoop
{
  public:
    using Task = std::function<void()>;

    EventLoop() = default;
    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Enqueue a task; thread-safe. */
    void post(Task t);

    /**
     * Install a hook invoked (outside the loop lock) whenever a task or
     * timer is posted. The pooled worker scheduler uses this to re-enqueue
     * a parked worker when work arrives for its loop.
     */
    void setWakeHook(Task hook);

    /** Schedule a task after delay_us microseconds; returns a timer id. */
    uint64_t setTimeout(Task t, int64_t delay_us);

    /** Cancel a pending timer; no-op if already fired. */
    void clearTimeout(uint64_t id);

    /** Run tasks until stop() is called. */
    void run();

    /** Request run() to return; thread-safe. */
    void stop();

    /**
     * Run a single task.
     *
     * @param wait block until a task is ready (or stop) when none pending.
     * @return true if a task ran.
     */
    bool pumpOne(bool wait);

    /** Drain all currently-ready tasks (and due timers); returns count. */
    size_t pump();

    /** True when no tasks are queued and no timers are pending. */
    bool idle() const;

    /**
     * Absolute due time (us) of the soonest pending timer, or -1 when no
     * timers are pending. Lets a test clock jump straight to the next
     * deadline instead of sleeping (see jsvm::TestClock::pumpUntilIdle).
     */
    int64_t nextTimerDueUs() const;

    /** True once stop() has been called. */
    bool stopped() const;

    /** The loop currently executing on this thread, or nullptr. */
    static EventLoop *current();

  private:
    struct Timer
    {
        int64_t due_us;
        Task fn;
    };

    // Pop one ready task; with wait, blocks until ready/stopped.
    bool takeTask(Task &out, bool wait);
    void promoteDueTimersLocked(int64_t now);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Task> queue_;
    std::map<uint64_t, Timer> timers_; // id -> timer; ids are monotonic
    uint64_t nextTimerId_ = 1;
    bool stopped_ = false;
    Task wakeHook_;
};

} // namespace jsvm
} // namespace browsix
