/**
 * @file
 * Small shared helpers for the browser substrate: panic, wall-clock time.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace browsix {
namespace jsvm {

/** Abort the process with a message; used for "should never happen" bugs. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "browsix panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Monotonic clock in microseconds, used for timers and benchmarks.
 * Real steady_clock time normally; a virtual counter while a
 * jsvm::TestClock is installed (see test_clock.h). Defined in
 * test_clock.cc.
 */
int64_t nowUs();

} // namespace jsvm
} // namespace browsix
