/**
 * @file
 * Small shared helpers for the browser substrate: panic, wall-clock time.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace browsix {
namespace jsvm {

/** Abort the process with a message; used for "should never happen" bugs. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "browsix panic: %s\n", msg.c_str());
    std::abort();
}

/** Monotonic clock in microseconds, used for timers and benchmarks. */
inline int64_t
nowUs()
{
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
}

} // namespace jsvm
} // namespace browsix
