/**
 * @file
 * Blob URL registry.
 *
 * The kernel spawns processes from files in the Browsix filesystem, which
 * have no server-side URL; like the paper (§3.3), it wraps the bytes in a
 * Blob, obtains a blob: URL, and constructs the Worker from that URL.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace browsix {
namespace jsvm {

class BlobRegistry
{
  public:
    using Data = std::shared_ptr<const std::vector<uint8_t>>;

    /** Wrap bytes in a blob and return a unique blob: URL. */
    std::string createObjectUrl(std::vector<uint8_t> bytes);

    /** Resolve a blob: URL; nullptr when unknown/revoked. */
    Data resolve(const std::string &url) const;

    /** Drop a blob: URL. */
    void revokeObjectUrl(const std::string &url);

  private:
    mutable std::mutex mutex_;
    uint64_t nextId_ = 1;
    std::map<std::string, Data> blobs_;
};

} // namespace jsvm
} // namespace browsix
