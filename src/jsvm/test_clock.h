/**
 * @file
 * Deterministic virtual clock for tests.
 *
 * Installing a TestClock reroutes jsvm::nowUs() — the time source for
 * event-loop timers, the cost model, and the benchmark harness — to a
 * manually-advanced counter. Tests drive timers by advancing the clock
 * and pumping a loop instead of sleeping wall-clock time, which makes
 * pipe-backpressure, timer, and kernel-lifecycle tests exact and fast.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace browsix {
namespace jsvm {

class EventLoop;

class TestClock
{
  public:
    /**
     * Install this clock as the process-wide time source (RAII).
     *
     * Lifetime: threads read the installed clock without synchronization,
     * so the TestClock must outlive every thread that may call nowUs() —
     * terminate/join workers before it leaves scope.
     */
    explicit TestClock(int64_t start_us = 1000000);
    ~TestClock();
    TestClock(const TestClock &) = delete;
    TestClock &operator=(const TestClock &) = delete;

    /** Current virtual time in microseconds. */
    int64_t nowUs() const { return now_us_.load(std::memory_order_acquire); }

    /** Move virtual time forward; never backwards. */
    void advanceUs(int64_t delta_us);

    /**
     * Drain `loop` without wall-clock waits: run every ready task, then
     * jump the clock to the next pending timer and repeat, until the
     * loop is idle or `max_virtual_us` of virtual time has elapsed.
     *
     * @return number of tasks executed.
     */
    size_t pumpUntilIdle(EventLoop &loop,
                         int64_t max_virtual_us = 60ll * 1000 * 1000);

    /** The installed clock, or nullptr when real time is in effect. */
    static TestClock *active();

  private:
    std::atomic<int64_t> now_us_;
    TestClock *prev_;
};

} // namespace jsvm
} // namespace browsix
