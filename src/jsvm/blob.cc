#include "jsvm/blob.h"

namespace browsix {
namespace jsvm {

std::string
BlobRegistry::createObjectUrl(std::vector<uint8_t> bytes)
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::string url = "blob:browsix/" + std::to_string(nextId_++);
    blobs_[url] =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    return url;
}

BlobRegistry::Data
BlobRegistry::resolve(const std::string &url) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = blobs_.find(url);
    return it == blobs_.end() ? nullptr : it->second;
}

void
BlobRegistry::revokeObjectUrl(const std::string &url)
{
    std::lock_guard<std::mutex> lk(mutex_);
    blobs_.erase(url);
}

} // namespace jsvm
} // namespace browsix
