/**
 * @file
 * Web Worker: an isolated JavaScript context running in parallel.
 *
 * Workers share nothing with the main context (except SharedArrayBuffers)
 * and communicate only via postMessage, whose payloads are structured-clone
 * copied. Browsix builds Unix processes on top of these (§3.3).
 */
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jsvm/event_loop.h"
#include "jsvm/sab.h"
#include "jsvm/value.h"

namespace browsix {
namespace jsvm {

class Browser;
class Worker;
class CostModel;

/**
 * The worker-global scope: what code running inside the worker sees.
 *
 * Mirrors DedicatedWorkerGlobalScope: postMessage back to the parent,
 * an onmessage handler, and (our addition) the interrupt token that
 * Worker::terminate() trips so blocked threads can unwind.
 */
class WorkerScope
{
  public:
    explicit WorkerScope(Worker &w) : worker_(w) {}

    /** Send a message to the parent (main) context. */
    void postMessage(const Value &v);

    /** Register the worker-side message handler (runs on the worker loop). */
    void setOnMessage(std::function<void(Value)> handler);

    EventLoop &loop();
    InterruptToken &token();
    const CostModel &costs() const;

    /** Run fn on the worker thread after the loop stops (e.g. join app
     * threads the language runtime started). */
    void atExit(std::function<void()> fn);

  private:
    Worker &worker_;
};

/**
 * Handle to a worker, held by the creating (main) context.
 */
class Worker : public std::enable_shared_from_this<Worker>
{
  public:
    /// The "script": invoked once on the worker thread before the loop runs.
    using Main = std::function<void(WorkerScope &,
                                    std::shared_ptr<const std::vector<uint8_t>>)>;

    ~Worker();

    /** Send a message to the worker (structured-clone copied). */
    void postMessage(const Value &v);

    /** Parent-side message handler; runs on the main loop. */
    void setOnMessage(std::function<void(Value)> handler);

    /**
     * Immediately terminate the worker, like Worker.terminate(): wakes any
     * Atomics.wait, stops the loop, joins the thread. Idempotent.
     */
    void terminate();

    bool terminated() const;

    InterruptToken &token() { return token_; }
    uint64_t id() const { return id_; }

  private:
    friend class Browser;
    friend class WorkerScope;

    Worker(Browser &browser, uint64_t id,
           std::shared_ptr<const std::vector<uint8_t>> script, Main main);
    void start();

    Browser &browser_;
    uint64_t id_;
    std::shared_ptr<const std::vector<uint8_t>> script_;
    Main main_;

    EventLoop loop_;
    InterruptToken token_;
    std::thread thread_;

    mutable std::mutex mutex_;
    bool terminated_ = false;
    std::function<void(Value)> parentHandler_;
    std::function<void(Value)> workerHandler_;
    std::vector<std::function<void()>> atExit_;
};

} // namespace jsvm
} // namespace browsix
