/**
 * @file
 * Web Worker: an isolated JavaScript context running in parallel.
 *
 * Workers share nothing with the main context (except SharedArrayBuffers)
 * and communicate only via postMessage, whose payloads are structured-clone
 * copied. Browsix builds Unix processes on top of these (§3.3).
 *
 * Two execution modes:
 *
 *  - Legacy (no executor installed on the Browser): each worker owns a
 *    dedicated host thread running its event loop, and each guest
 *    execution context (startGuest) is another host thread. Simple, but
 *    two threads per process caps the system near 1k live guests.
 *
 *  - Pooled (Browser::setExecutor): the worker is a run-queue item. A
 *    fixed pool of host threads (kernel::Scheduler) pops workers and calls
 *    step(), which pumps the worker's event loop and resumes its guest
 *    fibers. Parked guests cost zero threads; their wake event re-enqueues
 *    the worker. This is what takes the process table to 10k+ live.
 */
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jsvm/event_loop.h"
#include "jsvm/fiber.h"
#include "jsvm/sab.h"
#include "jsvm/value.h"

namespace browsix {
namespace jsvm {

class Browser;
class Worker;
class CostModel;

/**
 * Where pooled workers get their host-thread time. Implemented by the
 * kernel's Scheduler; declared here so jsvm stays independent of kernel.
 */
class WorkerExecutor
{
  public:
    virtual ~WorkerExecutor() = default;

    /** Hand the worker a step of execution; must not run it inline unless
     * the executor has shut down. Callable from any thread. */
    virtual void enqueue(std::shared_ptr<Worker> w) = 0;

    /** Re-enqueue the worker once nowUs() reaches due_us (worker-loop
     * timers). Callable from any thread. */
    virtual void scheduleTimer(std::shared_ptr<Worker> w, int64_t due_us) = 0;
};

/**
 * The worker-global scope: what code running inside the worker sees.
 *
 * Mirrors DedicatedWorkerGlobalScope: postMessage back to the parent,
 * an onmessage handler, and (our addition) the interrupt token that
 * Worker::terminate() trips so blocked guests can unwind. Owned by the
 * Worker itself (not a stack frame), so guest contexts can never outlive
 * it.
 */
class WorkerScope
{
  public:
    explicit WorkerScope(Worker &w) : worker_(w) {}

    /** Send a message to the parent (main) context. */
    void postMessage(const Value &v);

    /** Register the worker-side message handler (runs on the worker loop). */
    void setOnMessage(std::function<void(Value)> handler);

    EventLoop &loop();
    InterruptToken &token();
    const CostModel &costs() const;

    /**
     * Launch a guest execution context running fn: a fiber multiplexed on
     * the worker pool in pooled mode, a dedicated host thread (joined at
     * exit) in legacy mode. fn may block in Atomics::wait, blockingCall,
     * and channel waits; on termination those sites throw WorkerTerminated
     * to unwind it.
     */
    void startGuest(std::function<void()> fn);

    /** True when this worker multiplexes guests on the shared pool. */
    bool pooled() const;

    /** Run fn after the loop stops (e.g. join app threads the language
     * runtime started). */
    void atExit(std::function<void()> fn);

  private:
    Worker &worker_;
};

/**
 * Handle to a worker, held by the creating (main) context.
 */
class Worker : public std::enable_shared_from_this<Worker>
{
  public:
    /// The "script": invoked once on the worker thread before the loop runs.
    using Main = std::function<void(WorkerScope &,
                                    std::shared_ptr<const std::vector<uint8_t>>)>;

    ~Worker();

    /** Send a message to the worker (structured-clone copied). */
    void postMessage(const Value &v);

    /** Parent-side message handler; runs on the main loop. */
    void setOnMessage(std::function<void(Value)> handler);

    /**
     * Immediately terminate the worker, like Worker.terminate(): wakes any
     * Atomics.wait and stops the loop. Legacy mode joins the dedicated
     * thread; pooled mode re-enqueues the worker so a pool thread unwinds
     * its fibers (a queued-but-never-run guest is simply dropped).
     * Idempotent.
     */
    void terminate();

    bool terminated() const;

    /**
     * Pooled mode: run one scheduling quantum on the calling thread —
     * bootstrap on first call, pump the event loop, resume each runnable
     * fiber once, then either re-enqueue (more work / signalled during the
     * step) or go idle. Called only by the executor, never concurrently.
     */
    void step();

    /**
     * Mark the worker runnable and enqueue it if it is idle; coalesces
     * into a dirty flag if a step is in flight. Thread-safe.
     */
    void signalWork();

    /** Scheduling phase for introspection (kernel run states). */
    enum class RunPhase {
        Dedicated, ///< legacy mode: guest owns host threads
        Running,   ///< a pool thread is stepping it right now
        Queued,    ///< in the run queue waiting for a pool thread
        Parked     ///< idle: every guest is parked, no pending work
    };
    RunPhase runPhase() const;

    bool pooled() const { return pooled_; }

    InterruptToken &token() { return token_; }
    uint64_t id() const { return id_; }

  private:
    friend class Browser;
    friend class WorkerScope;

    Worker(Browser &browser, uint64_t id,
           std::shared_ptr<const std::vector<uint8_t>> script, Main main);
    void start();
    void startGuest(std::function<void()> fn);
    void fiberWoken(uint64_t fiber_id);
    void resumeRunnableFibers();
    void teardownFibers();
    void finishStep();
    bool hasPendingWork();

    /// One guest execution context in pooled mode.
    struct GuestFiber
    {
        uint64_t id = 0;
        bool runnable = true; ///< guarded by Worker::mutex_
        std::unique_ptr<Fiber> fiber;
    };

    /// Pooled scheduling state; transitions are lock-free CAS.
    enum class SchedState : int {
        Idle,    ///< not queued, not running
        Queued,  ///< in the executor's run queue
        Running, ///< step() in flight on a pool thread
        Dirty    ///< step() in flight AND new work arrived: re-queue after
    };

    Browser &browser_;
    uint64_t id_;
    std::shared_ptr<const std::vector<uint8_t>> script_;
    Main main_;

    EventLoop loop_;
    InterruptToken token_;
    std::thread thread_;                 // legacy mode only
    std::unique_ptr<WorkerScope> scope_; // worker-owned: outlives all guests

    bool pooled_ = false;
    std::shared_ptr<WorkerExecutor> executor_;
    std::atomic<SchedState> schedState_{SchedState::Idle};
    bool booted_ = false;   // step-thread only
    bool tornDown_ = false; // step-thread only

    mutable std::mutex mutex_;
    bool terminated_ = false;
    uint64_t nextFiberId_ = 1;
    std::vector<std::shared_ptr<GuestFiber>> fibers_;
    std::function<void(Value)> parentHandler_;
    std::function<void(Value)> workerHandler_;
    std::vector<std::function<void()>> atExit_;
};

} // namespace jsvm
} // namespace browsix
