#include "jsvm/event_loop.h"

#include <chrono>
#include <limits>

#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

namespace {
thread_local EventLoop *tCurrent = nullptr;

struct CurrentGuard
{
    EventLoop *prev;
    explicit CurrentGuard(EventLoop *l) : prev(tCurrent) { tCurrent = l; }
    ~CurrentGuard() { tCurrent = prev; }
};
} // namespace

EventLoop *
EventLoop::current()
{
    return tCurrent;
}

void
EventLoop::setWakeHook(Task hook)
{
    std::lock_guard<std::mutex> lk(mutex_);
    wakeHook_ = std::move(hook);
}

void
EventLoop::post(Task t)
{
    Task hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        queue_.push_back(std::move(t));
        hook = wakeHook_;
    }
    cv_.notify_all();
    if (hook)
        hook();
}

uint64_t
EventLoop::setTimeout(Task t, int64_t delay_us)
{
    uint64_t id;
    Task hook;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        id = nextTimerId_++;
        timers_[id] = Timer{nowUs() + (delay_us < 0 ? 0 : delay_us),
                            std::move(t)};
        hook = wakeHook_;
    }
    cv_.notify_all();
    if (hook)
        hook();
    return id;
}

void
EventLoop::clearTimeout(uint64_t id)
{
    std::lock_guard<std::mutex> lk(mutex_);
    timers_.erase(id);
}

void
EventLoop::promoteDueTimersLocked(int64_t now)
{
    for (auto it = timers_.begin(); it != timers_.end();) {
        if (it->second.due_us <= now) {
            queue_.push_back(std::move(it->second.fn));
            it = timers_.erase(it);
        } else {
            ++it;
        }
    }
}

bool
EventLoop::takeTask(Task &out, bool wait)
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        promoteDueTimersLocked(nowUs());
        if (!queue_.empty()) {
            out = std::move(queue_.front());
            queue_.pop_front();
            return true;
        }
        if (stopped_ || !wait)
            return false;
        // Sleep until the next timer is due or something is posted.
        int64_t next = std::numeric_limits<int64_t>::max();
        for (const auto &[id, t] : timers_)
            next = std::min(next, t.due_us);
        if (next == std::numeric_limits<int64_t>::max()) {
            cv_.wait(lk);
        } else {
            int64_t now = nowUs();
            if (next > now) {
                cv_.wait_for(lk,
                             std::chrono::microseconds(next - now));
            }
        }
    }
}

bool
EventLoop::pumpOne(bool wait)
{
    Task t;
    if (!takeTask(t, wait))
        return false;
    CurrentGuard guard(this);
    t();
    return true;
}

size_t
EventLoop::pump()
{
    size_t n = 0;
    while (pumpOne(false))
        n++;
    return n;
}

void
EventLoop::run()
{
    while (!stopped()) {
        if (!pumpOne(true)) {
            if (stopped())
                break;
        }
    }
    // Drain nothing further: a stopped context runs no more tasks.
}

void
EventLoop::stop()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopped_ = true;
    }
    cv_.notify_all();
}

int64_t
EventLoop::nextTimerDueUs() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    int64_t next = -1;
    for (const auto &[id, t] : timers_)
        if (next < 0 || t.due_us < next)
            next = t.due_us;
    return next;
}

bool
EventLoop::idle() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.empty() && timers_.empty();
}

bool
EventLoop::stopped() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return stopped_;
}

} // namespace jsvm
} // namespace browsix
