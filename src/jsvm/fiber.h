/**
 * @file
 * Resumable guest execution contexts for the pooled worker scheduler.
 *
 * A Fiber is a ucontext-backed stackful coroutine owned by a Worker. In
 * pooled mode every guest "thread" (an Emscripten program, a goroutine, a
 * bytecode VM host loop) runs as a fiber multiplexed onto a fixed pool of
 * host threads: a blocked guest parks its fiber and costs zero threads
 * until the wake event re-enqueues its worker.
 *
 * Parker protocol (the wake/park race is decided by a three-state cell):
 *
 *   kIdle      running or runnable, no pending notification
 *   kNotified  a wake arrived; the next park() consumes it and returns
 *   kParked    committed parked; the next wake() must re-enqueue the owner
 *
 * park() consumes any notification, otherwise raises parkIntent and
 * switches back to the scheduler. The *scheduler* then tries to commit the
 * park with a kIdle -> kParked CAS (commitPark); if a wake slipped in
 * between, the CAS fails and the fiber simply stays runnable. This keeps
 * every state transition a single atomic op and makes lost wakeups
 * structurally impossible.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ucontext.h>
#include <vector>

namespace browsix {
namespace jsvm {

class Fiber
{
  public:
    using Fn = std::function<void()>;
    /** Invoked (from any thread) when wake() hits a committed-parked fiber;
     * must make the owning worker re-resume this fiber. */
    using WakeHook = std::function<void()>;

    /** stack_bytes 0 picks the default (guard-paged, lazily committed). */
    Fiber(Fn fn, WakeHook on_wake, size_t stack_bytes = 0);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Run the fiber on the calling thread until it parks, yields, or
     * finishes. Never call concurrently for the same fiber.
     *
     * @return true when the fiber's fn has returned (or unwound).
     */
    bool resume();

    bool finished() const { return finished_.load(std::memory_order_acquire); }

    /** True once the fiber has been given its first quantum. A never-
     * started fiber can be dropped without unwinding (its fn never ran). */
    bool started() const { return started_; }

    /** After resume() returned false: did the fiber request a park? */
    bool wantsPark() const { return parkIntent_; }

    /**
     * Scheduler side: commit the pending park (kIdle -> kParked CAS).
     * @return false if a wake raced in — the fiber is still runnable.
     */
    bool commitPark();

    /**
     * Notify the fiber; thread-safe, callable from any thread. If the
     * fiber had committed a park, the WakeHook runs (once per park).
     */
    void wake();

    /** The fiber currently executing on this thread, or nullptr. */
    static Fiber *current();

    /**
     * Block the current fiber until wake(). Must be called from inside a
     * fiber. Callers re-check their predicate in a loop: a park may end
     * without a matching wake (commitPark lost the race) and wakes are
     * permitted to be spurious.
     */
    static void park();

    /** Cooperatively yield: switch out but stay runnable (FIFO re-queue). */
    static void yieldNow();

    /** yieldNow() iff the caller is running inside a fiber; else no-op.
     * Compute-bound guest loops call this for pool fairness. */
    static void maybeYield();

  private:
    enum ParkState : int { kIdle = 0, kNotified = 1, kParked = 2 };

    static void trampoline();
    void switchOut();

    Fn fn_;
    WakeHook onWake_;
    std::atomic<int> state_{kIdle};
    std::atomic<bool> finished_{false};
    bool parkIntent_ = false;
    bool started_ = false;

    uint8_t *stackBase_ = nullptr; // mmap base (guard page first)
    size_t stackMapBytes_ = 0;     // total mapping incl. guard page
    uint8_t *stackLo_ = nullptr;   // usable stack bottom
    size_t stackBytes_ = 0;        // usable stack size

    ucontext_t ctx_;
    ucontext_t callerCtx_;

    // Sanitizer bookkeeping (no-ops outside ASan/TSan builds).
    void *tsanFiber_ = nullptr;
    void *tsanCaller_ = nullptr;
    void *asanFakeStack_ = nullptr;       // fiber's saved fake stack
    const void *asanCallerBottom_ = nullptr;
    size_t asanCallerSize_ = 0;
};

/**
 * Condition-variable analogue usable from both host threads and fibers.
 *
 * Waiting threads block on an internal std::condition_variable; waiting
 * fibers park. The waiter list is guarded by the caller's mutex — both
 * wait() and notifyAll() must be called with the same mutex held (wait
 * releases it while blocked, exactly like std::condition_variable).
 */
class FiberCv
{
  public:
    /** Block until notified (spurious returns allowed, as with any cv). */
    void wait(std::unique_lock<std::mutex> &lk);

    template <class Pred>
    void wait(std::unique_lock<std::mutex> &lk, Pred pred)
    {
        while (!pred())
            wait(lk);
    }

    /** Wake all waiting threads and fibers; call with the mutex held. */
    void notifyAll();

  private:
    std::condition_variable cv_;
    std::vector<Fiber *> fiberWaiters_; // guarded by the external mutex
};

} // namespace jsvm
} // namespace browsix
