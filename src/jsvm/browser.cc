#include "jsvm/browser.h"

#include <chrono>
#include <thread>

#include "jsvm/util.h"

namespace browsix {
namespace jsvm {

Browser::Browser(BrowserProfile profile) : costs_(std::move(profile)) {}

Browser::~Browser()
{
    terminateAll();
}

void
Browser::setExecutor(std::shared_ptr<WorkerExecutor> exec)
{
    std::lock_guard<std::mutex> lk(mutex_);
    executor_ = std::move(exec);
}

std::shared_ptr<WorkerExecutor>
Browser::executor() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return executor_;
}

std::shared_ptr<Worker>
Browser::createWorker(const std::string &url, Worker::Main main)
{
    auto script = blobs_.resolve(url);
    if (!script)
        panic("createWorker: unknown blob URL " + url);
    costs_.chargeSpawn();
    costs_.chargeParse(script->size());

    uint64_t id;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        id = nextWorkerId_++;
    }
    // Not make_shared: the constructor is private.
    std::shared_ptr<Worker> w(new Worker(*this, id, script, std::move(main)));
    {
        std::lock_guard<std::mutex> lk(mutex_);
        workers_.push_back(w);
    }
    w->start();
    return w;
}

bool
Browser::runUntil(const std::function<bool()> &pred, int64_t timeout_ms)
{
    int64_t deadline = nowUs() + timeout_ms * 1000;
    for (;;) {
        mainLoop_.pump();
        if (pred())
            return true;
        if (nowUs() >= deadline)
            return false;
        if (!mainLoop_.pumpOne(false))
            std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

void
Browser::terminateAll()
{
    std::vector<std::weak_ptr<Worker>> workers;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        workers.swap(workers_);
    }
    for (auto &wp : workers) {
        if (auto w = wp.lock())
            w->terminate();
    }
}

} // namespace jsvm
} // namespace browsix
