/**
 * @file
 * A JavaScript-like dynamic value used for postMessage payloads.
 *
 * Messages between the kernel (main context) and processes (workers) are
 * Values; Value::clone() implements the browser's structured-clone
 * semantics: everything is deeply copied except SharedArrayBuffers, which
 * are shared by reference (per the ES Shared Memory spec).
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace browsix {
namespace jsvm {

class SharedArrayBuffer;
using SabPtr = std::shared_ptr<SharedArrayBuffer>;

class Value
{
  public:
    enum class Type {
        Undefined, Null, Bool, Number, String, Bytes, Shared, Array, Object
    };

    using Array = std::vector<Value>;
    using Object = std::map<std::string, Value>;
    /// ArrayBuffer analogue: copied by structured clone.
    using Bytes = std::vector<uint8_t>;
    using BytesPtr = std::shared_ptr<Bytes>;

    Value() : v_(std::monostate{}) {}
    Value(std::nullptr_t) : v_(NullTag{}) {}
    Value(bool b) : v_(b) {}
    Value(double d) : v_(d) {}
    Value(int i) : v_(static_cast<double>(i)) {}
    Value(unsigned i) : v_(static_cast<double>(i)) {}
    Value(int64_t i) : v_(static_cast<double>(i)) {}
    Value(uint64_t i) : v_(static_cast<double>(i)) {}
    Value(const char *s) : v_(std::string(s)) {}
    Value(std::string s) : v_(std::move(s)) {}
    Value(BytesPtr b) : v_(std::move(b)) {}
    Value(SabPtr s) : v_(std::move(s)) {}
    Value(Array a) : v_(std::move(a)) {}
    Value(Object o) : v_(std::move(o)) {}

    static Value undefined() { return Value(); }
    static Value null() { return Value(nullptr); }
    static Value bytes(Bytes b)
    {
        return Value(std::make_shared<Bytes>(std::move(b)));
    }
    static Value bytes(const uint8_t *p, size_t n)
    {
        return Value(std::make_shared<Bytes>(p, p + n));
    }
    static Value array(Array a = {}) { return Value(std::move(a)); }
    static Value object(Object o = {}) { return Value(std::move(o)); }

    Type type() const;

    bool isUndefined() const { return type() == Type::Undefined; }
    bool isNull() const { return type() == Type::Null; }
    bool isBool() const { return type() == Type::Bool; }
    bool isNumber() const { return type() == Type::Number; }
    bool isString() const { return type() == Type::String; }
    bool isBytes() const { return type() == Type::Bytes; }
    bool isShared() const { return type() == Type::Shared; }
    bool isArray() const { return type() == Type::Array; }
    bool isObject() const { return type() == Type::Object; }

    /// Accessors panic on type mismatch (a bug, not user error).
    bool asBool() const;
    double asNumber() const;
    int32_t asInt() const { return static_cast<int32_t>(asNumber()); }
    int64_t asInt64() const { return static_cast<int64_t>(asNumber()); }
    const std::string &asString() const;
    const BytesPtr &asBytes() const;
    const SabPtr &asShared() const;
    const Array &asArray() const;
    Array &asArray();
    const Object &asObject() const;
    Object &asObject();

    /// Object field access; returns undefined for missing keys / non-objects.
    const Value &get(const std::string &key) const;
    void set(const std::string &key, Value v);
    /// Array element access; returns undefined when out of range.
    const Value &at(size_t i) const;
    void push(Value v);
    size_t size() const;

    /** Structured clone: deep copy, except SharedArrayBuffers (by ref). */
    Value clone() const;

    /** Approximate serialized size, used to charge structured-clone cost. */
    size_t approxByteSize() const;

    /** Debug rendering (JSON-ish). */
    std::string toString() const;

  private:
    struct NullTag {};
    using Repr = std::variant<std::monostate, NullTag, bool, double,
                              std::string, BytesPtr, SabPtr, Array, Object>;
    Repr v_;
};

} // namespace jsvm
} // namespace browsix
