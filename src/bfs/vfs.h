/**
 * @file
 * The mountable virtual filesystem: BrowserFS's "MountableFileSystem".
 *
 * Multiple backends are mounted into one hierarchical namespace; the VFS
 * resolves paths to (backend, subpath), follows symlinks for path-based
 * operations (lstat excepted), and offers whole-file conveniences used by
 * the kernel's exec path and by embedding applications.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bfs/backend.h"

namespace browsix {
namespace bfs {

class Vfs
{
  public:
    struct Mount
    {
        std::string prefix; // normalized; "/" for the root mount
        BackendPtr backend;
    };

    /** Mount a backend; longer prefixes shadow shorter ones. */
    void mount(const std::string &prefix, BackendPtr backend);

    const std::vector<Mount> &mounts() const { return mounts_; }

    // Path-based operations (symlinks followed unless noted).
    void stat(const std::string &path, StatCb cb);
    void lstat(const std::string &path, StatCb cb);
    void open(const std::string &path, int oflags, uint32_t mode, OpenCb cb);
    void readdir(const std::string &path, DirCb cb);
    void mkdir(const std::string &path, uint32_t mode, ErrCb cb);
    void rmdir(const std::string &path, ErrCb cb);
    void unlink(const std::string &path, ErrCb cb);
    void rename(const std::string &from, const std::string &to, ErrCb cb);
    void readlink(const std::string &path, StrCb cb);
    void symlink(const std::string &target, const std::string &path,
                 ErrCb cb);
    void utimes(const std::string &path, int64_t atime_us, int64_t mtime_us,
                ErrCb cb);
    void access(const std::string &path, int amode, ErrCb cb);

    /** Read an entire file. */
    void readFile(const std::string &path, DataCb cb);
    /** Create/replace an entire file (parents must exist). */
    void writeFile(const std::string &path, Buffer data, ErrCb cb);

    // Synchronous conveniences: panic if the backend would block (they are
    // intended for inline backends — staging, tests, embedder setup).
    int statSync(const std::string &path, Stat &out);
    int readFileSync(const std::string &path, Buffer &out);
    int writeFileSync(const std::string &path, const std::string &data);
    int mkdirSync(const std::string &path);

  private:
    struct Resolved
    {
        Backend *backend = nullptr;
        std::string sub;    // path within the backend
        std::string full;   // normalized full path
    };

    Resolved resolve(const std::string &path) const;

    /**
     * Follow leaf symlinks: calls done(finalResolved) after at most 10
     * hops, or errCb on failure.
     */
    void followLinks(const std::string &path, int depth,
                     std::function<void(int err, Resolved)> done);

    std::vector<Mount> mounts_; // sorted by descending prefix length
};

using VfsPtr = std::shared_ptr<Vfs>;

} // namespace bfs
} // namespace browsix
