/**
 * @file
 * Shared filesystem types for the BrowserFS-equivalent layer.
 *
 * All backend operations are callback-based (BrowserFS's own convention,
 * which also matches Node.js fs). Errors are positive errno values; 0 is
 * success. The kernel's syscall layer converts these to -errno returns.
 */
#pragma once

#include <cerrno>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace browsix {
namespace bfs {

enum class FileType { Regular, Directory, Symlink };

struct Stat
{
    FileType type = FileType::Regular;
    uint64_t size = 0;
    uint64_t ino = 0;
    uint32_t mode = 0644; ///< permission bits only; type is in `type`
    uint32_t nlink = 1;
    int64_t atimeUs = 0;
    int64_t mtimeUs = 0;
    int64_t ctimeUs = 0;

    bool isDir() const { return type == FileType::Directory; }
    bool isFile() const { return type == FileType::Regular; }
    bool isSymlink() const { return type == FileType::Symlink; }
};

struct DirEntry
{
    std::string name;
    FileType type = FileType::Regular;
    uint64_t ino = 0;
};

using Buffer = std::vector<uint8_t>;
using BufferPtr = std::shared_ptr<Buffer>;

/**
 * A caller-owned destination window for zero-copy reads (preadInto): the
 * backend writes at most `len` bytes at `data` and reports the count via
 * SizeCb. The caller guarantees the memory outlives the callback — for
 * syscalls the window aliases the process's shared heap, which the kernel
 * pins for the duration of the call.
 */
struct ByteSpan
{
    uint8_t *data = nullptr;
    size_t len = 0;
};

/**
 * A caller-owned source window for zero-copy writes (pwriteFrom): the
 * backend reads at most `len` bytes at `data`. Same lifetime contract as
 * ByteSpan — the caller guarantees the memory outlives the completion
 * callback; for syscalls the window aliases the process's shared heap,
 * which the kernel pins for the duration of the call.
 */
struct ConstByteSpan
{
    const uint8_t *data = nullptr;
    size_t len = 0;
};

using ErrCb = std::function<void(int err)>;
using StatCb = std::function<void(int err, const Stat &)>;
using DataCb = std::function<void(int err, BufferPtr data)>;
using SizeCb = std::function<void(int err, size_t n)>;
using DirCb = std::function<void(int err, std::vector<DirEntry>)>;
using StrCb = std::function<void(int err, const std::string &)>;

/// Open flags (Linux numeric values, for syscall-layer fidelity).
namespace flags {
constexpr int RDONLY = 0;
constexpr int WRONLY = 01;
constexpr int RDWR = 02;
constexpr int CREAT = 0100;
constexpr int EXCL = 0200;
constexpr int TRUNC = 01000;
constexpr int APPEND = 02000;

inline bool wantsWrite(int f) { return (f & 03) != RDONLY; }
inline bool wantsRead(int f) { return (f & 03) != WRONLY; }
} // namespace flags

/** Allocate a process-unique inode number. */
uint64_t nextIno();

} // namespace bfs
} // namespace browsix
