/**
 * @file
 * Overlay filesystem: a writable layer over a read-only underlay.
 *
 * This is the backend the paper's LaTeX editor uses: the read-only underlay
 * is the HTTP-backed TeX Live tree, the writable layer holds user files and
 * build outputs. Browsix's two extensions to BrowserFS (§3.6) are both
 * here: per-path locking so multi-step operations from different processes
 * do not interleave, and *lazy* underlay access (the original BrowserFS
 * overlay eagerly read every underlay file at initialization; the eager
 * mode is kept behind a flag for the ablation benchmark).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "bfs/backend.h"

namespace browsix {
namespace bfs {

/**
 * Grants exclusive, queued access to a path so that multi-step async
 * operations (e.g. copy-up: read underlay, then write upper) by different
 * processes cannot interleave.
 */
class PathLockManager
{
  public:
    using Release = std::function<void()>;

    /** Run fn once the path lock is free; fn must call release() when done. */
    void withLock(const std::string &path,
                  std::function<void(Release)> fn);

    /** Number of times an operation had to queue behind a holder. */
    uint64_t contentionCount() const { return contention_; }

  private:
    void runNext(const std::string &path);

    std::map<std::string, std::deque<std::function<void(Release)>>> queues_;
    std::set<std::string> held_;
    uint64_t contention_ = 0;
};

class OverlayBackend : public Backend
{
  public:
    struct Options
    {
        /// Lazy (Browsix) vs eager (original BrowserFS) underlay loading.
        bool lazy = true;

        Options() {}
        explicit Options(bool lazy_mode) : lazy(lazy_mode) {}
    };

    OverlayBackend(BackendPtr writable, BackendPtr readonly,
                   Options opts = Options());

    std::string name() const override { return "overlay"; }

    /**
     * In eager mode, copies the entire underlay into the writable layer
     * (what BrowserFS did before the paper's change); in lazy mode this
     * completes immediately. Counts are recorded for the ablation bench.
     */
    void initialize(ErrCb cb);

    void stat(const std::string &path, StatCb cb) override;
    void open(const std::string &path, int oflags, uint32_t mode,
              OpenCb cb) override;
    void readdir(const std::string &path, DirCb cb) override;
    void mkdir(const std::string &path, uint32_t mode, ErrCb cb) override;
    void rmdir(const std::string &path, ErrCb cb) override;
    void unlink(const std::string &path, ErrCb cb) override;
    void rename(const std::string &from, const std::string &to,
                ErrCb cb) override;
    void readlink(const std::string &path, StrCb cb) override;
    void symlink(const std::string &target, const std::string &path,
                 ErrCb cb) override;
    void utimes(const std::string &path, int64_t atime_us, int64_t mtime_us,
                ErrCb cb) override;

    /// Ablation / experiment counters.
    uint64_t eagerFilesCopied() const { return eagerFiles_; }
    uint64_t eagerBytesCopied() const { return eagerBytes_; }
    uint64_t copyUpCount() const { return copyUps_; }
    PathLockManager &locks() { return locks_; }

  private:
    bool isDeleted(const std::string &path) const;
    void markDeleted(const std::string &path);
    void clearDeleted(const std::string &path);

    /** Ensure the parent directory chain exists in the writable layer. */
    void shadowDirs(const std::string &dirpath, ErrCb cb);

    /** Copy a regular file from the underlay into the writable layer. */
    void copyUp(const std::string &path, ErrCb cb);

    void eagerCopyTree(const std::string &path, ErrCb cb);

    BackendPtr upper_;
    BackendPtr lower_;
    Options opts_;
    std::set<std::string> deleted_;
    PathLockManager locks_;

    uint64_t eagerFiles_ = 0;
    uint64_t eagerBytes_ = 0;
    uint64_t copyUps_ = 0;
};

} // namespace bfs
} // namespace browsix
