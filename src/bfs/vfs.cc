#include "bfs/vfs.h"

#include <algorithm>

#include "bfs/path.h"
#include "jsvm/util.h"

namespace browsix {
namespace bfs {

void
Vfs::mount(const std::string &prefix, BackendPtr backend)
{
    Mount m{normalizePath(prefix), std::move(backend)};
    mounts_.push_back(std::move(m));
    std::sort(mounts_.begin(), mounts_.end(),
              [](const Mount &a, const Mount &b) {
                  return a.prefix.size() > b.prefix.size();
              });
}

Vfs::Resolved
Vfs::resolve(const std::string &path) const
{
    std::string norm = normalizePath(path);
    for (const auto &m : mounts_) {
        if (!pathHasPrefix(norm, m.prefix))
            continue;
        Resolved r;
        r.backend = m.backend.get();
        r.full = norm;
        if (m.prefix == "/")
            r.sub = norm;
        else if (norm == m.prefix)
            r.sub = "/";
        else
            r.sub = norm.substr(m.prefix.size());
        return r;
    }
    return Resolved{};
}

void
Vfs::followLinks(const std::string &path, int depth,
                 std::function<void(int err, Resolved)> done)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        done(ENOENT, std::move(r));
        return;
    }
    if (depth > 10) {
        done(ELOOP, std::move(r));
        return;
    }
    r.backend->stat(r.sub, [this, r, depth, done](int err, const Stat &st) {
        if (err != 0 || !st.isSymlink()) {
            // Missing paths resolve to themselves: open(CREAT) needs that.
            done(0, r);
            return;
        }
        r.backend->readlink(r.sub, [this, r, depth,
                                    done](int lerr, const std::string &t) {
            if (lerr) {
                done(lerr, r);
                return;
            }
            std::string next = joinPath(dirname(r.full), t);
            followLinks(next, depth + 1, done);
        });
    });
}

void
Vfs::stat(const std::string &path, StatCb cb)
{
    followLinks(path, 0, [cb](int err, Resolved r) {
        if (err) {
            cb(err, Stat{});
            return;
        }
        r.backend->stat(r.sub, cb);
    });
}

void
Vfs::lstat(const std::string &path, StatCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT, Stat{});
        return;
    }
    r.backend->stat(r.sub, cb);
}

void
Vfs::open(const std::string &path, int oflags, uint32_t mode, OpenCb cb)
{
    followLinks(path, 0, [oflags, mode, cb](int err, Resolved r) {
        if (err) {
            cb(err, nullptr);
            return;
        }
        r.backend->open(r.sub, oflags, mode, cb);
    });
}

void
Vfs::readdir(const std::string &path, DirCb cb)
{
    followLinks(path, 0, [this, cb](int err, Resolved r) {
        if (err) {
            cb(err, {});
            return;
        }
        r.backend->readdir(r.sub, [this, r, cb](int derr,
                                                std::vector<DirEntry> out) {
            if (derr) {
                cb(derr, {});
                return;
            }
            // Submounts appear as directories in their parent.
            for (const auto &m : mounts_) {
                if (m.prefix != "/" && dirname(m.prefix) == r.full) {
                    std::string leaf = basename(m.prefix);
                    bool dup = false;
                    for (auto &e : out)
                        if (e.name == leaf)
                            dup = true;
                    if (!dup)
                        out.push_back(
                            DirEntry{leaf, FileType::Directory, 0});
                }
            }
            cb(0, std::move(out));
        });
    });
}

void
Vfs::mkdir(const std::string &path, uint32_t mode, ErrCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT);
        return;
    }
    r.backend->mkdir(r.sub, mode, cb);
}

void
Vfs::rmdir(const std::string &path, ErrCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT);
        return;
    }
    r.backend->rmdir(r.sub, cb);
}

void
Vfs::unlink(const std::string &path, ErrCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT);
        return;
    }
    r.backend->unlink(r.sub, cb);
}

void
Vfs::rename(const std::string &from, const std::string &to, ErrCb cb)
{
    Resolved rf = resolve(from);
    Resolved rt = resolve(to);
    if (!rf.backend || !rt.backend) {
        cb(ENOENT);
        return;
    }
    if (rf.backend != rt.backend) {
        cb(EXDEV);
        return;
    }
    rf.backend->rename(rf.sub, rt.sub, cb);
}

void
Vfs::readlink(const std::string &path, StrCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT, "");
        return;
    }
    r.backend->readlink(r.sub, cb);
}

void
Vfs::symlink(const std::string &target, const std::string &path, ErrCb cb)
{
    Resolved r = resolve(path);
    if (!r.backend) {
        cb(ENOENT);
        return;
    }
    r.backend->symlink(target, r.sub, cb);
}

void
Vfs::utimes(const std::string &path, int64_t atime_us, int64_t mtime_us,
            ErrCb cb)
{
    followLinks(path, 0, [atime_us, mtime_us, cb](int err, Resolved r) {
        if (err) {
            cb(err);
            return;
        }
        r.backend->utimes(r.sub, atime_us, mtime_us, cb);
    });
}

void
Vfs::access(const std::string &path, int, ErrCb cb)
{
    // No users / permission checks (§3.1): access is an existence test.
    stat(path, [cb](int err, const Stat &) { cb(err); });
}

void
Vfs::readFile(const std::string &path, DataCb cb)
{
    open(path, flags::RDONLY, 0, [cb](int err, OpenFilePtr f) {
        if (err) {
            cb(err, nullptr);
            return;
        }
        f->fstat([f, cb](int serr, const Stat &st) {
            if (serr) {
                cb(serr, nullptr);
                return;
            }
            f->pread(0, st.size, [f, cb](int rerr, BufferPtr data) {
                cb(rerr, std::move(data));
            });
        });
    });
}

void
Vfs::writeFile(const std::string &path, Buffer data, ErrCb cb)
{
    open(path, flags::CREAT | flags::TRUNC | flags::WRONLY, 0644,
         [data = std::move(data), cb](int err, OpenFilePtr f) {
             if (err) {
                 cb(err);
                 return;
             }
             f->pwrite(0, data.data(), data.size(),
                       [f, cb](int werr, size_t) { cb(werr); });
         });
}

namespace {

/** Helper for the *Sync wrappers: panics when a backend defers. */
template <typename T>
T
mustComplete(bool completed, T result, const char *what)
{
    if (!completed)
        jsvm::panic(std::string("Vfs: ") + what +
                    " would block (async backend); use the callback API");
    return result;
}

} // namespace

int
Vfs::statSync(const std::string &path, Stat &out)
{
    bool done = false;
    int result = 0;
    stat(path, [&](int err, const Stat &st) {
        done = true;
        result = err;
        out = st;
    });
    return mustComplete(done, result, "statSync");
}

int
Vfs::readFileSync(const std::string &path, Buffer &out)
{
    bool done = false;
    int result = 0;
    readFile(path, [&](int err, BufferPtr data) {
        done = true;
        result = err;
        if (data)
            out = *data;
    });
    return mustComplete(done, result, "readFileSync");
}

int
Vfs::writeFileSync(const std::string &path, const std::string &data)
{
    bool done = false;
    int result = 0;
    writeFile(path, Buffer(data.begin(), data.end()), [&](int err) {
        done = true;
        result = err;
    });
    return mustComplete(done, result, "writeFileSync");
}

int
Vfs::mkdirSync(const std::string &path)
{
    bool done = false;
    int result = 0;
    mkdir(path, 0755, [&](int err) {
        done = true;
        result = err;
    });
    return mustComplete(done, result, "mkdirSync");
}

} // namespace bfs
} // namespace browsix
