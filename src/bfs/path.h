/**
 * @file
 * Path manipulation helpers (normalize, join, split, dirname/basename).
 *
 * All VFS-visible paths are absolute, '/'-separated, normalized (no ".",
 * "..", doubled or trailing slashes except the root itself).
 */
#pragma once

#include <string>
#include <vector>

namespace browsix {
namespace bfs {

/** Split a path into its non-empty components. */
std::vector<std::string> splitPath(const std::string &path);

/** Normalize to an absolute path; ".." never escapes the root. */
std::string normalizePath(const std::string &path);

/** Join and normalize. If rhs is absolute it wins (like POSIX resolution). */
std::string joinPath(const std::string &base, const std::string &rhs);

/** Everything before the final component ("/" for top-level paths). */
std::string dirname(const std::string &path);

/** The final component ("" for the root). */
std::string basename(const std::string &path);

/** True if `path` equals `prefix` or is inside it. */
bool pathHasPrefix(const std::string &path, const std::string &prefix);

} // namespace bfs
} // namespace browsix
