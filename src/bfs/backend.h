/**
 * @file
 * The filesystem backend interface (BrowserFS's FileSystem analogue).
 *
 * A backend serves one mounted subtree; paths passed to it are normalized,
 * absolute within the mount ("/" is the mount root). Implementations may
 * complete callbacks inline (in-memory) or later via an event loop (HTTP).
 */
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "bfs/types.h"

namespace browsix {
namespace bfs {

/**
 * Adapt a Buffer-producing completion into a fill-this-window one: clamp
 * to the window, copy, report the delivered count. The shared fallback
 * for every preadInto/readInto default, so the clamp lives in one place.
 */
inline DataCb
bounceIntoSpan(ByteSpan dst, SizeCb cb)
{
    return [dst, cb](int err, BufferPtr data) {
        if (err) {
            cb(err, 0);
            return;
        }
        size_t n = data ? std::min(data->size(), dst.len) : 0;
        if (n > 0)
            std::memcpy(dst.data, data->data(), n);
        cb(0, n);
    };
}

/**
 * An open file supporting positional I/O; the kernel's file-descriptor
 * objects wrap one of these plus a cursor.
 */
class OpenFile
{
  public:
    virtual ~OpenFile() = default;

    /** Read up to len bytes at offset; short data at EOF, empty at/after. */
    virtual void pread(uint64_t off, size_t len, DataCb cb) = 0;

    /**
     * Zero-copy positional read: fill the caller-provided window in place
     * and complete with the byte count (short at EOF, 0 at/after). A
     * backend must never write more than dst.len bytes. The default
     * bounces through pread() and copies — backends with resident data
     * (in-memory, fetched HTTP blobs) override it to skip the
     * intermediate Buffer entirely.
     */
    virtual void preadInto(uint64_t off, ByteSpan dst, SizeCb cb)
    {
        pread(off, dst.len, bounceIntoSpan(dst, std::move(cb)));
    }

    /** Write len bytes at offset, extending the file as needed. */
    virtual void pwrite(uint64_t off, const uint8_t *data, size_t len,
                        SizeCb cb) = 0;

    /**
     * Zero-copy positional write: consume the caller-provided source
     * window (for sync/ring syscalls it aliases the guest heap) and
     * complete with the byte count. The caller guarantees the window
     * outlives the callback, so the default simply forwards to pwrite —
     * no intermediate Buffer is ever materialized on this path. Backends
     * whose pwrite stashes the pointer past the callback must override.
     */
    virtual void pwriteFrom(uint64_t off, ConstByteSpan src, SizeCb cb)
    {
        pwrite(off, src.data, src.len, std::move(cb));
    }

    virtual void fstat(StatCb cb) = 0;

    virtual void ftruncate(uint64_t size, ErrCb cb) = 0;

    /** Release backend resources; further I/O is a bug. */
    virtual void close() {}
};

using OpenFilePtr = std::shared_ptr<OpenFile>;
using OpenCb = std::function<void(int err, OpenFilePtr)>;

class Backend
{
  public:
    virtual ~Backend() = default;

    virtual std::string name() const = 0;
    virtual bool readOnly() const { return false; }

    /// Follows no symlinks itself; the VFS layer resolves them.
    virtual void stat(const std::string &path, StatCb cb) = 0;

    virtual void open(const std::string &path, int oflags, uint32_t mode,
                      OpenCb cb) = 0;

    virtual void readdir(const std::string &path, DirCb cb) = 0;

    virtual void mkdir(const std::string &path, uint32_t mode, ErrCb cb) = 0;
    virtual void rmdir(const std::string &path, ErrCb cb) = 0;
    virtual void unlink(const std::string &path, ErrCb cb) = 0;
    virtual void rename(const std::string &from, const std::string &to,
                        ErrCb cb) = 0;

    virtual void readlink(const std::string &path, StrCb cb)
    {
        (void)path;
        cb(EINVAL, "");
    }
    virtual void symlink(const std::string &target, const std::string &path,
                         ErrCb cb)
    {
        (void)target;
        (void)path;
        cb(EPERM);
    }

    virtual void utimes(const std::string &path, int64_t atime_us,
                        int64_t mtime_us, ErrCb cb)
    {
        (void)path;
        (void)atime_us;
        (void)mtime_us;
        cb(0);
    }
};

using BackendPtr = std::shared_ptr<Backend>;

} // namespace bfs
} // namespace browsix
