#include "bfs/overlay.h"

#include "bfs/path.h"
#include "jsvm/util.h"

namespace browsix {
namespace bfs {

void
PathLockManager::withLock(const std::string &path,
                          std::function<void(Release)> fn)
{
    if (held_.count(path)) {
        contention_++;
        queues_[path].push_back(std::move(fn));
        return;
    }
    held_.insert(path);
    Release release = [this, path]() { runNext(path); };
    fn(release);
}

void
PathLockManager::runNext(const std::string &path)
{
    auto it = queues_.find(path);
    if (it == queues_.end() || it->second.empty()) {
        held_.erase(path);
        queues_.erase(path);
        return;
    }
    auto fn = std::move(it->second.front());
    it->second.pop_front();
    Release release = [this, path]() { runNext(path); };
    fn(release);
}

OverlayBackend::OverlayBackend(BackendPtr writable, BackendPtr readonly,
                               Options opts)
    : upper_(std::move(writable)), lower_(std::move(readonly)), opts_(opts)
{
}

void
OverlayBackend::initialize(ErrCb cb)
{
    if (opts_.lazy) {
        cb(0);
        return;
    }
    eagerCopyTree("/", std::move(cb));
}

void
OverlayBackend::eagerCopyTree(const std::string &path, ErrCb cb)
{
    lower_->readdir(path, [this, path, cb](int err,
                                           std::vector<DirEntry> entries) {
        if (err) {
            cb(err);
            return;
        }
        // Copy entries sequentially (mirrors the original BrowserFS loop).
        auto entriesPtr =
            std::make_shared<std::vector<DirEntry>>(std::move(entries));
        auto step = std::make_shared<std::function<void(size_t)>>();
        *step = [this, path, cb, entriesPtr, step](size_t i) {
            if (i >= entriesPtr->size()) {
                cb(0);
                return;
            }
            const DirEntry &e = (*entriesPtr)[i];
            std::string child = joinPath(path, e.name);
            auto next = [step, i](int err2) {
                if (err2) {
                    // Skip unreadable entries, keep walking.
                }
                (*step)(i + 1);
            };
            if (e.type == FileType::Directory) {
                upper_->mkdir(child, 0755, [this, child, next](int) {
                    eagerCopyTree(child, next);
                });
            } else if (e.type == FileType::Regular) {
                copyUp(child, [this, next](int err2) {
                    if (!err2)
                        eagerFiles_++;
                    next(err2);
                });
            } else {
                next(0);
            }
        };
        (*step)(0);
    });
}

bool
OverlayBackend::isDeleted(const std::string &path) const
{
    return deleted_.count(normalizePath(path)) > 0;
}

void
OverlayBackend::markDeleted(const std::string &path)
{
    deleted_.insert(normalizePath(path));
}

void
OverlayBackend::clearDeleted(const std::string &path)
{
    deleted_.erase(normalizePath(path));
}

void
OverlayBackend::shadowDirs(const std::string &dirpath, ErrCb cb)
{
    std::string norm = normalizePath(dirpath);
    if (norm == "/") {
        cb(0);
        return;
    }
    upper_->stat(norm, [this, norm, cb](int err, const Stat &st) {
        if (err == 0) {
            cb(st.isDir() ? 0 : ENOTDIR);
            return;
        }
        shadowDirs(dirname(norm), [this, norm, cb](int perr) {
            if (perr) {
                cb(perr);
                return;
            }
            upper_->mkdir(norm, 0755, [cb](int merr) {
                cb(merr == EEXIST ? 0 : merr);
            });
        });
    });
}

void
OverlayBackend::copyUp(const std::string &path, ErrCb cb)
{
    lower_->open(path, flags::RDONLY, 0, [this, path, cb](int err,
                                                          OpenFilePtr f) {
        if (err) {
            cb(err);
            return;
        }
        f->fstat([this, path, cb, f](int serr, const Stat &st) {
            if (serr) {
                cb(serr);
                return;
            }
            f->pread(0, st.size, [this, path, cb, st](int rerr,
                                                      BufferPtr data) {
                if (rerr) {
                    cb(rerr);
                    return;
                }
                shadowDirs(dirname(path), [this, path, cb, data,
                                           st](int derr) {
                    if (derr) {
                        cb(derr);
                        return;
                    }
                    upper_->open(
                        path, flags::CREAT | flags::TRUNC | flags::WRONLY,
                        st.mode, [this, cb, data](int oerr, OpenFilePtr out) {
                            if (oerr) {
                                cb(oerr);
                                return;
                            }
                            // The lower layer's bytes are already
                            // resident in `data`; hand the window to the
                            // upper layer's zero-copy write (the
                            // callback keeps `data` alive past it).
                            out->pwriteFrom(
                                0,
                                ConstByteSpan{data->data(), data->size()},
                                [this, cb, data](int werr, size_t) {
                                    if (!werr) {
                                        copyUps_++;
                                        eagerBytes_ += data->size();
                                    }
                                    cb(werr);
                                });
                        });
                });
            });
        });
    });
}

void
OverlayBackend::stat(const std::string &path, StatCb cb)
{
    if (isDeleted(path)) {
        cb(ENOENT, Stat{});
        return;
    }
    upper_->stat(path, [this, path, cb](int err, const Stat &st) {
        if (err == 0) {
            cb(0, st);
            return;
        }
        lower_->stat(path, cb);
    });
}

void
OverlayBackend::open(const std::string &path, int oflags, uint32_t mode,
                     OpenCb cb)
{
    bool wants_write = flags::wantsWrite(oflags) || (oflags & flags::CREAT);
    if (isDeleted(path)) {
        if (!(oflags & flags::CREAT)) {
            cb(ENOENT, nullptr);
            return;
        }
        // Re-creating a deleted file: it lives in the writable layer.
        locks_.withLock(normalizePath(path),
                        [this, path, oflags, mode,
                         cb](PathLockManager::Release release) {
            clearDeleted(path);
            shadowDirs(dirname(path),
                       [this, path, oflags, mode, cb, release](int derr) {
                if (derr) {
                    release();
                    cb(derr, nullptr);
                    return;
                }
                upper_->open(path, oflags, mode,
                             [cb, release](int err, OpenFilePtr f) {
                                 release();
                                 cb(err, f);
                             });
            });
        });
        return;
    }
    if (!wants_write) {
        upper_->open(path, oflags, mode,
                     [this, path, oflags, mode, cb](int err, OpenFilePtr f) {
                         if (err == 0 || err != ENOENT) {
                             cb(err, f);
                             return;
                         }
                         lower_->open(path, oflags, mode, cb);
                     });
        return;
    }
    // Write path: serialize the (possibly multi-step) copy-up per path.
    locks_.withLock(normalizePath(path),
                    [this, path, oflags, mode,
                     cb](PathLockManager::Release release) {
        auto openUpper = [this, path, oflags, mode, cb, release]() {
            shadowDirs(dirname(path),
                       [this, path, oflags, mode, cb, release](int derr) {
                if (derr) {
                    release();
                    cb(derr, nullptr);
                    return;
                }
                upper_->open(path, oflags, mode,
                             [cb, release](int err, OpenFilePtr f) {
                                 release();
                                 cb(err, f);
                             });
            });
        };
        upper_->stat(path, [this, path, oflags, openUpper, cb,
                            release](int uerr, const Stat &) {
            if (uerr == 0) {
                openUpper();
                return;
            }
            lower_->stat(path, [this, path, oflags, openUpper, cb,
                                release](int lerr, const Stat &lst) {
                if (lerr != 0) {
                    // Brand new file (CREAT) or a genuine ENOENT.
                    openUpper();
                    return;
                }
                if (lst.isDir()) {
                    release();
                    cb(EISDIR, nullptr);
                    return;
                }
                if (oflags & flags::TRUNC) {
                    // Contents are discarded anyway; skip the copy.
                    openUpper();
                    return;
                }
                copyUp(path, [openUpper, cb, release](int cerr) {
                    if (cerr) {
                        release();
                        cb(cerr, nullptr);
                        return;
                    }
                    openUpper();
                });
            });
        });
    });
}

void
OverlayBackend::readdir(const std::string &path, DirCb cb)
{
    if (isDeleted(path)) {
        cb(ENOENT, {});
        return;
    }
    upper_->readdir(path, [this, path, cb](int uerr,
                                           std::vector<DirEntry> upper) {
        lower_->readdir(path, [this, path, cb, uerr,
                               upper = std::move(upper)](
                                  int lerr, std::vector<DirEntry> lower) {
            if (uerr != 0 && lerr != 0) {
                cb(uerr == ENOTDIR || lerr == ENOTDIR ? ENOTDIR : ENOENT,
                   {});
                return;
            }
            std::vector<DirEntry> out;
            std::set<std::string> seen;
            if (uerr == 0) {
                for (auto &e : upper) {
                    if (seen.insert(e.name).second)
                        out.push_back(e);
                }
            }
            if (lerr == 0) {
                for (auto &e : lower) {
                    if (isDeleted(joinPath(path, e.name)))
                        continue;
                    if (seen.insert(e.name).second)
                        out.push_back(e);
                }
            }
            cb(0, std::move(out));
        });
    });
}

void
OverlayBackend::mkdir(const std::string &path, uint32_t mode, ErrCb cb)
{
    stat(path, [this, path, mode, cb](int err, const Stat &) {
        if (err == 0) {
            cb(EEXIST);
            return;
        }
        clearDeleted(path);
        shadowDirs(dirname(path), [this, path, mode, cb](int derr) {
            if (derr) {
                cb(derr);
                return;
            }
            upper_->mkdir(path, mode, [cb](int merr) {
                cb(merr == EEXIST ? 0 : merr);
            });
        });
    });
}

void
OverlayBackend::rmdir(const std::string &path, ErrCb cb)
{
    readdir(path, [this, path, cb](int err, std::vector<DirEntry> entries) {
        if (err) {
            cb(err);
            return;
        }
        if (!entries.empty()) {
            cb(ENOTEMPTY);
            return;
        }
        upper_->rmdir(path, [this, path, cb](int uerr) {
            lower_->stat(path, [this, path, cb, uerr](int lerr,
                                                      const Stat &st) {
                if (lerr == 0 && st.isDir()) {
                    markDeleted(path);
                    cb(0);
                    return;
                }
                cb(uerr);
            });
        });
    });
}

void
OverlayBackend::unlink(const std::string &path, ErrCb cb)
{
    stat(path, [this, path, cb](int err, const Stat &st) {
        if (err) {
            cb(err);
            return;
        }
        if (st.isDir()) {
            cb(EISDIR);
            return;
        }
        upper_->unlink(path, [this, path, cb](int) {
            lower_->stat(path, [this, path, cb](int lerr, const Stat &) {
                if (lerr == 0)
                    markDeleted(path);
                cb(0);
            });
        });
    });
}

void
OverlayBackend::rename(const std::string &from, const std::string &to,
                       ErrCb cb)
{
    upper_->stat(from, [this, from, to, cb](int uerr, const Stat &ust) {
        lower_->stat(from, [this, from, to, cb, uerr,
                            ust](int lerr, const Stat &) {
            if (uerr != 0 && lerr != 0) {
                cb(ENOENT);
                return;
            }
            if (uerr == 0 && lerr != 0) {
                shadowDirs(dirname(to), [this, from, to, cb](int derr) {
                    if (derr) {
                        cb(derr);
                        return;
                    }
                    clearDeleted(to);
                    upper_->rename(from, to, cb);
                });
                return;
            }
            // Source (at least partly) in the underlay: copy-up + delete.
            // The destination's parent chain may itself exist only in the
            // underlay, so it must be shadowed before the upper rename.
            if (uerr != 0 && lerr == 0) {
                copyUp(from, [this, from, to, cb](int cerr) {
                    if (cerr) {
                        cb(cerr);
                        return;
                    }
                    shadowDirs(dirname(to), [this, from, to, cb](int derr) {
                        if (derr) {
                            cb(derr);
                            return;
                        }
                        markDeleted(from);
                        clearDeleted(to);
                        upper_->rename(from, to, cb);
                    });
                });
                return;
            }
            // Present in both layers (shadowed): move upper, hide lower.
            shadowDirs(dirname(to), [this, from, to, cb](int derr) {
                if (derr) {
                    cb(derr);
                    return;
                }
                markDeleted(from);
                clearDeleted(to);
                upper_->rename(from, to, cb);
            });
        });
    });
}

void
OverlayBackend::readlink(const std::string &path, StrCb cb)
{
    if (isDeleted(path)) {
        cb(ENOENT, "");
        return;
    }
    upper_->readlink(path, [this, path, cb](int err, const std::string &t) {
        if (err == 0 || err == EINVAL) {
            cb(err, t);
            return;
        }
        lower_->readlink(path, cb);
    });
}

void
OverlayBackend::symlink(const std::string &target, const std::string &path,
                        ErrCb cb)
{
    stat(path, [this, target, path, cb](int err, const Stat &) {
        if (err == 0) {
            cb(EEXIST);
            return;
        }
        clearDeleted(path);
        shadowDirs(dirname(path), [this, target, path, cb](int derr) {
            if (derr) {
                cb(derr);
                return;
            }
            upper_->symlink(target, path, cb);
        });
    });
}

void
OverlayBackend::utimes(const std::string &path, int64_t atime_us,
                       int64_t mtime_us, ErrCb cb)
{
    if (isDeleted(path)) {
        cb(ENOENT);
        return;
    }
    upper_->stat(path, [this, path, atime_us, mtime_us,
                        cb](int uerr, const Stat &) {
        if (uerr == 0) {
            upper_->utimes(path, atime_us, mtime_us, cb);
            return;
        }
        lower_->stat(path, [this, path, atime_us, mtime_us,
                            cb](int lerr, const Stat &lst) {
            if (lerr) {
                cb(lerr);
                return;
            }
            if (lst.isDir()) {
                cb(0); // directory times in the underlay: best effort
                return;
            }
            copyUp(path, [this, path, atime_us, mtime_us, cb](int cerr) {
                if (cerr) {
                    cb(cerr);
                    return;
                }
                upper_->utimes(path, atime_us, mtime_us, cb);
            });
        });
    });
}

} // namespace bfs
} // namespace browsix
