/**
 * @file
 * In-memory filesystem backend (BrowserFS "InMemory" analogue).
 *
 * Completes all callbacks inline. Supports symlinks; the writable layer of
 * the overlay backend is one of these.
 */
#pragma once

#include <map>
#include <memory>
#include <string>

#include "bfs/backend.h"

namespace browsix {
namespace bfs {

class InMemBackend : public Backend
{
  public:
    InMemBackend();

    std::string name() const override { return "inmem"; }

    void stat(const std::string &path, StatCb cb) override;
    void open(const std::string &path, int oflags, uint32_t mode,
              OpenCb cb) override;
    void readdir(const std::string &path, DirCb cb) override;
    void mkdir(const std::string &path, uint32_t mode, ErrCb cb) override;
    void rmdir(const std::string &path, ErrCb cb) override;
    void unlink(const std::string &path, ErrCb cb) override;
    void rename(const std::string &from, const std::string &to,
                ErrCb cb) override;
    void readlink(const std::string &path, StrCb cb) override;
    void symlink(const std::string &target, const std::string &path,
                 ErrCb cb) override;
    void utimes(const std::string &path, int64_t atime_us, int64_t mtime_us,
                ErrCb cb) override;

    // --- synchronous conveniences (complete inline; used widely by the
    // kernel boot path, tests, and filesystem staging) ---

    /** Create all missing directories along path. */
    int mkdirAll(const std::string &path);
    /** Write a whole file, creating parents as needed. */
    int writeFile(const std::string &path, const std::string &data);
    int writeFile(const std::string &path, const Buffer &data);
    /** Read a whole file. */
    int readFile(const std::string &path, Buffer &out) const;

  private:
    struct Node;
    using NodePtr = std::shared_ptr<Node>;

    struct Node
    {
        FileType type = FileType::Regular;
        uint64_t ino = 0;
        uint32_t mode = 0644;
        int64_t atimeUs = 0;
        int64_t mtimeUs = 0;
        int64_t ctimeUs = 0;
        BufferPtr data;                       // Regular
        std::map<std::string, NodePtr> children; // Directory
        std::string linkTarget;               // Symlink

        Stat toStat() const;
    };

    NodePtr lookup(const std::string &path) const;
    NodePtr lookupParent(const std::string &path, std::string &leaf) const;

    NodePtr root_;

    class MemOpenFile;
};

} // namespace bfs
} // namespace browsix
