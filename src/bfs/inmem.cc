#include "bfs/inmem.h"

#include <algorithm>
#include <cstring>

#include "bfs/path.h"
#include "jsvm/util.h"

namespace browsix {
namespace bfs {

uint64_t
nextIno()
{
    static uint64_t counter = 1;
    return counter++;
}

Stat
InMemBackend::Node::toStat() const
{
    Stat st;
    st.type = type;
    st.ino = ino;
    st.mode = mode;
    st.size = type == FileType::Regular ? (data ? data->size() : 0)
              : type == FileType::Symlink ? linkTarget.size()
                                          : 4096;
    st.atimeUs = atimeUs;
    st.mtimeUs = mtimeUs;
    st.ctimeUs = ctimeUs;
    return st;
}

/**
 * Positional I/O over an in-memory node. Holds the node alive; an unlinked
 * file stays readable through open descriptors (Unix semantics).
 */
class InMemBackend::MemOpenFile : public OpenFile
{
  public:
    explicit MemOpenFile(NodePtr node) : node_(std::move(node)) {}

    void
    pread(uint64_t off, size_t len, DataCb cb) override
    {
        const Buffer &d = *node_->data;
        auto out = std::make_shared<Buffer>();
        if (off < d.size()) {
            size_t n = std::min<uint64_t>(len, d.size() - off);
            out->assign(d.begin() + off, d.begin() + off + n);
        }
        node_->atimeUs = jsvm::nowUs();
        cb(0, std::move(out));
    }

    void
    preadInto(uint64_t off, ByteSpan dst, SizeCb cb) override
    {
        const Buffer &d = *node_->data;
        size_t n = 0;
        if (off < d.size()) {
            n = std::min<uint64_t>(dst.len, d.size() - off);
            if (n > 0)
                std::memcpy(dst.data, d.data() + off, n);
        }
        node_->atimeUs = jsvm::nowUs();
        cb(0, n);
    }

    void
    pwrite(uint64_t off, const uint8_t *data, size_t len, SizeCb cb) override
    {
        if (off + len < off) { // end-offset wrap: never index with it
            cb(EFBIG, 0);
            return;
        }
        Buffer &d = *node_->data;
        if (off + len > d.size())
            d.resize(off + len, 0);
        if (len > 0) // zero-length writes carry a null data pointer
            std::memcpy(d.data() + off, data, len);
        node_->mtimeUs = jsvm::nowUs();
        cb(0, len);
    }

    void
    pwriteFrom(uint64_t off, ConstByteSpan src, SizeCb cb) override
    {
        if (off + src.len < off) { // end-offset wrap: never index with it
            cb(EFBIG, 0);
            return;
        }
        // The source window (for syscalls: the guest heap) is consumed
        // directly into the resident node data — the single necessary
        // copy, with no intermediate Buffer on either side.
        Buffer &d = *node_->data;
        if (off + src.len > d.size())
            d.resize(off + src.len, 0);
        if (src.len > 0)
            std::memcpy(d.data() + off, src.data, src.len);
        node_->mtimeUs = jsvm::nowUs();
        cb(0, src.len);
    }

    void fstat(StatCb cb) override { cb(0, node_->toStat()); }

    void
    ftruncate(uint64_t size, ErrCb cb) override
    {
        node_->data->resize(size, 0);
        node_->mtimeUs = jsvm::nowUs();
        cb(0);
    }

  private:
    NodePtr node_;
};

InMemBackend::InMemBackend() : root_(std::make_shared<Node>())
{
    root_->type = FileType::Directory;
    root_->ino = nextIno();
    root_->mode = 0755;
}

InMemBackend::NodePtr
InMemBackend::lookup(const std::string &path) const
{
    NodePtr cur = root_;
    for (const auto &part : splitPath(normalizePath(path))) {
        if (!cur || cur->type != FileType::Directory)
            return nullptr;
        auto it = cur->children.find(part);
        if (it == cur->children.end())
            return nullptr;
        cur = it->second;
    }
    return cur;
}

InMemBackend::NodePtr
InMemBackend::lookupParent(const std::string &path, std::string &leaf) const
{
    std::string norm = normalizePath(path);
    if (norm == "/")
        return nullptr;
    leaf = basename(norm);
    return lookup(dirname(norm));
}

void
InMemBackend::stat(const std::string &path, StatCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT, Stat{});
        return;
    }
    cb(0, n->toStat());
}

void
InMemBackend::open(const std::string &path, int oflags, uint32_t mode,
                   OpenCb cb)
{
    NodePtr n = lookup(path);
    if (n && n->type == FileType::Directory) {
        cb(EISDIR, nullptr);
        return;
    }
    if (!n) {
        if (!(oflags & flags::CREAT)) {
            cb(ENOENT, nullptr);
            return;
        }
        std::string leaf;
        NodePtr parent = lookupParent(path, leaf);
        if (!parent || parent->type != FileType::Directory) {
            cb(ENOENT, nullptr);
            return;
        }
        n = std::make_shared<Node>();
        n->type = FileType::Regular;
        n->ino = nextIno();
        n->mode = mode ? mode : 0644;
        n->data = std::make_shared<Buffer>();
        n->ctimeUs = n->mtimeUs = n->atimeUs = jsvm::nowUs();
        parent->children[leaf] = n;
    } else {
        if ((oflags & flags::CREAT) && (oflags & flags::EXCL)) {
            cb(EEXIST, nullptr);
            return;
        }
        if (oflags & flags::TRUNC) {
            n->data = std::make_shared<Buffer>();
            n->mtimeUs = jsvm::nowUs();
        }
    }
    if (!n->data)
        n->data = std::make_shared<Buffer>();
    cb(0, std::make_shared<MemOpenFile>(n));
}

void
InMemBackend::readdir(const std::string &path, DirCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT, {});
        return;
    }
    if (n->type != FileType::Directory) {
        cb(ENOTDIR, {});
        return;
    }
    std::vector<DirEntry> out;
    out.reserve(n->children.size());
    for (const auto &[name, child] : n->children)
        out.push_back(DirEntry{name, child->type, child->ino});
    cb(0, std::move(out));
}

void
InMemBackend::mkdir(const std::string &path, uint32_t mode, ErrCb cb)
{
    if (lookup(path)) {
        cb(EEXIST);
        return;
    }
    std::string leaf;
    NodePtr parent = lookupParent(path, leaf);
    if (!parent || parent->type != FileType::Directory) {
        cb(ENOENT);
        return;
    }
    auto n = std::make_shared<Node>();
    n->type = FileType::Directory;
    n->ino = nextIno();
    n->mode = mode ? mode : 0755;
    n->ctimeUs = n->mtimeUs = jsvm::nowUs();
    parent->children[leaf] = n;
    cb(0);
}

void
InMemBackend::rmdir(const std::string &path, ErrCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT);
        return;
    }
    if (n->type != FileType::Directory) {
        cb(ENOTDIR);
        return;
    }
    if (!n->children.empty()) {
        cb(ENOTEMPTY);
        return;
    }
    std::string leaf;
    NodePtr parent = lookupParent(path, leaf);
    if (!parent) { // removing the mount root
        cb(EBUSY);
        return;
    }
    parent->children.erase(leaf);
    cb(0);
}

void
InMemBackend::unlink(const std::string &path, ErrCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT);
        return;
    }
    if (n->type == FileType::Directory) {
        cb(EISDIR);
        return;
    }
    std::string leaf;
    NodePtr parent = lookupParent(path, leaf);
    parent->children.erase(leaf);
    cb(0);
}

void
InMemBackend::rename(const std::string &from, const std::string &to, ErrCb cb)
{
    NodePtr n = lookup(from);
    if (!n) {
        cb(ENOENT);
        return;
    }
    std::string to_leaf;
    NodePtr to_parent = lookupParent(to, to_leaf);
    if (!to_parent || to_parent->type != FileType::Directory) {
        cb(ENOENT);
        return;
    }
    NodePtr existing = lookup(to);
    if (existing && existing->type == FileType::Directory &&
        !existing->children.empty()) {
        cb(ENOTEMPTY);
        return;
    }
    std::string from_leaf;
    NodePtr from_parent = lookupParent(from, from_leaf);
    from_parent->children.erase(from_leaf);
    to_parent->children[to_leaf] = n;
    cb(0);
}

void
InMemBackend::readlink(const std::string &path, StrCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT, "");
        return;
    }
    if (n->type != FileType::Symlink) {
        cb(EINVAL, "");
        return;
    }
    cb(0, n->linkTarget);
}

void
InMemBackend::symlink(const std::string &target, const std::string &path,
                      ErrCb cb)
{
    if (lookup(path)) {
        cb(EEXIST);
        return;
    }
    std::string leaf;
    NodePtr parent = lookupParent(path, leaf);
    if (!parent || parent->type != FileType::Directory) {
        cb(ENOENT);
        return;
    }
    auto n = std::make_shared<Node>();
    n->type = FileType::Symlink;
    n->ino = nextIno();
    n->linkTarget = target;
    n->ctimeUs = jsvm::nowUs();
    parent->children[leaf] = n;
    cb(0);
}

void
InMemBackend::utimes(const std::string &path, int64_t atime_us,
                     int64_t mtime_us, ErrCb cb)
{
    NodePtr n = lookup(path);
    if (!n) {
        cb(ENOENT);
        return;
    }
    n->atimeUs = atime_us;
    n->mtimeUs = mtime_us;
    cb(0);
}

int
InMemBackend::mkdirAll(const std::string &path)
{
    NodePtr cur = root_;
    for (const auto &part : splitPath(normalizePath(path))) {
        auto it = cur->children.find(part);
        if (it == cur->children.end()) {
            auto n = std::make_shared<Node>();
            n->type = FileType::Directory;
            n->ino = nextIno();
            n->mode = 0755;
            cur->children[part] = n;
            cur = n;
        } else {
            if (it->second->type != FileType::Directory)
                return ENOTDIR;
            cur = it->second;
        }
    }
    return 0;
}

int
InMemBackend::writeFile(const std::string &path, const std::string &data)
{
    return writeFile(path, Buffer(data.begin(), data.end()));
}

int
InMemBackend::writeFile(const std::string &path, const Buffer &data)
{
    int rc = mkdirAll(dirname(path));
    if (rc != 0)
        return rc;
    int result = 0;
    open(path, flags::CREAT | flags::TRUNC | flags::WRONLY, 0644,
         [&](int err, OpenFilePtr f) {
             if (err) {
                 result = err;
                 return;
             }
             f->pwrite(0, data.data(), data.size(),
                       [&](int werr, size_t) { result = werr; });
         });
    return result;
}

int
InMemBackend::readFile(const std::string &path, Buffer &out) const
{
    NodePtr n = lookup(path);
    if (!n)
        return ENOENT;
    if (n->type == FileType::Directory)
        return EISDIR;
    out = n->data ? *n->data : Buffer{};
    return 0;
}

} // namespace bfs
} // namespace browsix
