/**
 * @file
 * Read-only HTTP-backed filesystem (BrowserFS XmlHttpRequest analogue).
 *
 * The paper stages a full TeX Live tree on an HTTP server and lets the
 * filesystem pull files lazily on first access; the browser then caches
 * them, making subsequent accesses instantaneous (§2.2, §3.6).
 *
 * Here HttpStore plays the remote server, BrowserHttpCache the browser's
 * HTTP cache, and fetch latency (RTT + size/bandwidth) is scheduled on the
 * main event loop. A directory index (the listing file BrowserFS downloads
 * at mount time) is fetched lazily on first use.
 */
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "bfs/backend.h"
#include "jsvm/event_loop.h"

namespace browsix {
namespace bfs {

/** The remote HTTP server's document tree. */
class HttpStore
{
  public:
    void put(const std::string &path, Buffer data);
    void put(const std::string &path, const std::string &data);

    BufferPtr get(const std::string &path) const;
    bool has(const std::string &path) const;
    const std::map<std::string, BufferPtr> &files() const { return files_; }

    /** Serialized listing size (what the index fetch transfers). */
    size_t indexBytes() const;
    size_t totalBytes() const;

  private:
    std::map<std::string, BufferPtr> files_; // normalized path -> data
};

using HttpStorePtr = std::shared_ptr<HttpStore>;

/** The browser's HTTP cache, shared across backends / kernel boots. */
class BrowserHttpCache
{
  public:
    BufferPtr get(const std::string &url);
    void put(const std::string &url, BufferPtr data);
    void clear();

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    std::map<std::string, BufferPtr> entries_;
};

using BrowserHttpCachePtr = std::shared_ptr<BrowserHttpCache>;

struct NetworkParams
{
    int64_t rttUs = 0;               ///< per-request round-trip latency
    double bytesPerUs = 0;           ///< link bandwidth; 0 = infinite
    int64_t transferUs(size_t bytes) const
    {
        return rttUs + (bytesPerUs > 0
                            ? static_cast<int64_t>(bytes / bytesPerUs)
                            : 0);
    }
};

class HttpBackend : public Backend
{
  public:
    /**
     * @param loop completion scheduling; nullptr completes inline with no
     *             latency (useful for native-baseline runs and tests).
     */
    HttpBackend(HttpStorePtr store, BrowserHttpCachePtr cache,
                jsvm::EventLoop *loop, NetworkParams net);

    std::string name() const override { return "http"; }
    bool readOnly() const override { return true; }

    void stat(const std::string &path, StatCb cb) override;
    void open(const std::string &path, int oflags, uint32_t mode,
              OpenCb cb) override;
    void readdir(const std::string &path, DirCb cb) override;
    void mkdir(const std::string &, uint32_t, ErrCb cb) override { cb(EROFS); }
    void rmdir(const std::string &, ErrCb cb) override { cb(EROFS); }
    void unlink(const std::string &, ErrCb cb) override { cb(EROFS); }
    void rename(const std::string &, const std::string &, ErrCb cb) override
    {
        cb(EROFS);
    }

    /// Experiment counters.
    uint64_t fetchCount() const { return fetches_; }
    uint64_t bytesFetched() const { return bytesFetched_; }

  private:
    void ensureIndex(std::function<void()> done);
    void fetch(const std::string &path, DataCb cb);
    void defer(int64_t delay_us, std::function<void()> fn);

    HttpStorePtr store_;
    BrowserHttpCachePtr cache_;
    jsvm::EventLoop *loop_;
    NetworkParams net_;

    bool indexLoaded_ = false;
    std::set<std::string> dirs_;                 // known directories
    std::map<std::string, size_t> fileSizes_;    // from the index
    uint64_t fetches_ = 0;
    uint64_t bytesFetched_ = 0;
};

} // namespace bfs
} // namespace browsix
