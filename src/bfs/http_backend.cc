#include "bfs/http_backend.h"

#include <algorithm>

#include "bfs/path.h"
#include "jsvm/util.h"

namespace browsix {
namespace bfs {

void
HttpStore::put(const std::string &path, Buffer data)
{
    files_[normalizePath(path)] = std::make_shared<Buffer>(std::move(data));
}

void
HttpStore::put(const std::string &path, const std::string &data)
{
    put(path, Buffer(data.begin(), data.end()));
}

BufferPtr
HttpStore::get(const std::string &path) const
{
    auto it = files_.find(normalizePath(path));
    return it == files_.end() ? nullptr : it->second;
}

bool
HttpStore::has(const std::string &path) const
{
    return files_.count(normalizePath(path)) > 0;
}

size_t
HttpStore::indexBytes() const
{
    size_t n = 0;
    for (const auto &[path, data] : files_)
        n += path.size() + 16; // path + size/type metadata per entry
    return n;
}

size_t
HttpStore::totalBytes() const
{
    size_t n = 0;
    for (const auto &[path, data] : files_)
        n += data->size();
    return n;
}

BufferPtr
BrowserHttpCache::get(const std::string &url)
{
    auto it = entries_.find(url);
    if (it == entries_.end()) {
        misses++;
        return nullptr;
    }
    hits++;
    return it->second;
}

void
BrowserHttpCache::put(const std::string &url, BufferPtr data)
{
    entries_[url] = std::move(data);
}

void
BrowserHttpCache::clear()
{
    entries_.clear();
}

HttpBackend::HttpBackend(HttpStorePtr store, BrowserHttpCachePtr cache,
                         jsvm::EventLoop *loop, NetworkParams net)
    : store_(std::move(store)), cache_(std::move(cache)), loop_(loop),
      net_(net)
{
}

void
HttpBackend::defer(int64_t delay_us, std::function<void()> fn)
{
    if (loop_ == nullptr) {
        fn();
        return;
    }
    if (delay_us <= 0)
        loop_->post(std::move(fn));
    else
        loop_->setTimeout(std::move(fn), delay_us);
}

void
HttpBackend::ensureIndex(std::function<void()> done)
{
    if (indexLoaded_) {
        done();
        return;
    }
    size_t bytes = store_->indexBytes();
    fetches_++;
    bytesFetched_ += bytes;
    defer(net_.transferUs(bytes), [this, done = std::move(done)]() {
        if (!indexLoaded_) {
            for (const auto &[path, data] : store_->files()) {
                fileSizes_[path] = data->size();
                for (std::string d = dirname(path); ; d = dirname(d)) {
                    dirs_.insert(d);
                    if (d == "/")
                        break;
                }
            }
            dirs_.insert("/");
            indexLoaded_ = true;
        }
        done();
    });
}

void
HttpBackend::fetch(const std::string &path, DataCb cb)
{
    if (BufferPtr cached = cache_->get("httpfs:" + path)) {
        cb(0, cached);
        return;
    }
    BufferPtr data = store_->get(path);
    if (!data) {
        cb(ENOENT, nullptr);
        return;
    }
    fetches_++;
    bytesFetched_ += data->size();
    defer(net_.transferUs(data->size()),
          [this, path, data, cb = std::move(cb)]() {
              cache_->put("httpfs:" + path, data);
              cb(0, data);
          });
}

void
HttpBackend::stat(const std::string &path, StatCb cb)
{
    ensureIndex([this, path = normalizePath(path), cb = std::move(cb)]() {
        auto fit = fileSizes_.find(path);
        if (fit != fileSizes_.end()) {
            Stat st;
            st.type = FileType::Regular;
            st.size = fit->second;
            st.mode = 0444;
            st.ino = std::hash<std::string>{}(path) | 1;
            cb(0, st);
            return;
        }
        if (dirs_.count(path)) {
            Stat st;
            st.type = FileType::Directory;
            st.mode = 0555;
            st.ino = std::hash<std::string>{}(path) | 1;
            cb(0, st);
            return;
        }
        cb(ENOENT, Stat{});
    });
}

namespace {

/** Read-only view over fetched bytes. */
class HttpOpenFile : public OpenFile
{
  public:
    explicit HttpOpenFile(BufferPtr data) : data_(std::move(data)) {}

    void
    pread(uint64_t off, size_t len, DataCb cb) override
    {
        auto out = std::make_shared<Buffer>();
        if (off < data_->size()) {
            size_t n = std::min<uint64_t>(len, data_->size() - off);
            out->assign(data_->begin() + off, data_->begin() + off + n);
        }
        cb(0, std::move(out));
    }

    void
    preadInto(uint64_t off, ByteSpan dst, SizeCb cb) override
    {
        // The blob is already fetched (and browser-cached); serving a
        // read needs no further network trip, so fill in place.
        size_t n = 0;
        if (off < data_->size()) {
            n = std::min<uint64_t>(dst.len, data_->size() - off);
            if (n > 0)
                std::memcpy(dst.data, data_->data() + off, n);
        }
        cb(0, n);
    }

    void
    pwrite(uint64_t, const uint8_t *, size_t, SizeCb cb) override
    {
        cb(EROFS, 0);
    }

    void
    pwriteFrom(uint64_t, ConstByteSpan, SizeCb cb) override
    {
        cb(EROFS, 0); // never touch the source window of a read-only tree
    }

    void
    fstat(StatCb cb) override
    {
        Stat st;
        st.type = FileType::Regular;
        st.size = data_->size();
        st.mode = 0444;
        cb(0, st);
    }

    void ftruncate(uint64_t, ErrCb cb) override { cb(EROFS); }

  private:
    BufferPtr data_;
};

} // namespace

void
HttpBackend::open(const std::string &path, int oflags, uint32_t, OpenCb cb)
{
    if (flags::wantsWrite(oflags) || (oflags & flags::CREAT)) {
        cb(EROFS, nullptr);
        return;
    }
    ensureIndex([this, path = normalizePath(path), cb = std::move(cb)]() {
        if (dirs_.count(path) && !fileSizes_.count(path)) {
            cb(EISDIR, nullptr);
            return;
        }
        fetch(path, [cb](int err, BufferPtr data) {
            if (err) {
                cb(err, nullptr);
                return;
            }
            cb(0, std::make_shared<HttpOpenFile>(std::move(data)));
        });
    });
}

void
HttpBackend::readdir(const std::string &path, DirCb cb)
{
    ensureIndex([this, path = normalizePath(path), cb = std::move(cb)]() {
        if (!dirs_.count(path)) {
            cb(fileSizes_.count(path) ? ENOTDIR : ENOENT, {});
            return;
        }
        std::vector<DirEntry> out;
        std::set<std::string> seen;
        auto addChild = [&](const std::string &p, FileType type) {
            if (dirname(p) != path)
                return;
            std::string leaf = basename(p);
            if (seen.insert(leaf).second)
                out.push_back(DirEntry{leaf, type, 0});
        };
        for (const auto &[p, sz] : fileSizes_)
            addChild(p, FileType::Regular);
        for (const auto &d : dirs_)
            if (d != "/")
                addChild(d, FileType::Directory);
        cb(0, std::move(out));
    });
}

} // namespace bfs
} // namespace browsix
