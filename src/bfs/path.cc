#include "bfs/path.h"

#include <sstream>

namespace browsix {
namespace bfs {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> stack;
    for (const auto &part : splitPath(path)) {
        if (part == ".")
            continue;
        if (part == "..") {
            if (!stack.empty())
                stack.pop_back();
            continue; // ".." at the root stays at the root
        }
        stack.push_back(part);
    }
    if (stack.empty())
        return "/";
    std::string out;
    for (const auto &part : stack) {
        out += '/';
        out += part;
    }
    return out;
}

std::string
joinPath(const std::string &base, const std::string &rhs)
{
    if (!rhs.empty() && rhs[0] == '/')
        return normalizePath(rhs);
    return normalizePath(base + "/" + rhs);
}

std::string
dirname(const std::string &path)
{
    std::string p = normalizePath(path);
    auto pos = p.find_last_of('/');
    if (pos == std::string::npos || pos == 0)
        return "/";
    return p.substr(0, pos);
}

std::string
basename(const std::string &path)
{
    std::string p = normalizePath(path);
    if (p == "/")
        return "";
    auto pos = p.find_last_of('/');
    return p.substr(pos + 1);
}

bool
pathHasPrefix(const std::string &path, const std::string &prefix)
{
    std::string p = normalizePath(path);
    std::string pre = normalizePath(prefix);
    if (pre == "/")
        return true;
    if (p == pre)
        return true;
    return p.size() > pre.size() && p.compare(0, pre.size(), pre) == 0 &&
           p[pre.size()] == '/';
}

} // namespace bfs
} // namespace browsix
