/**
 * @file
 * The meme-generator server (§5.1.1): a stateless Go web server that
 * reads base images from the filesystem, overlays caption text, and
 * serves PNGs over HTTP.
 *
 * Endpoints:
 *   GET /api/images                 -> JSON list of template names
 *   GET /api/meme?template=N&top=T&bottom=B  -> image/png
 *
 * The request handler is shared between three deployments, exactly as
 * in the paper: (1) the unmodified Go source compiled with GopherJS and
 * run as a Browsix process over Browsix sockets; (2) the same server
 * running natively ("localhost"); (3) the native server behind a
 * simulated WAN link ("EC2"). Only the int64 type differs: rt::Int64 in
 * the GopherJS build, int64_t natively.
 */
#pragma once

#include <map>
#include <string>

#include "apps/meme/image.h"
#include "bfs/inmem.h"
#include "net/http.h"
#include "runtime/gopher/go_runtime.h"

namespace browsix {
namespace apps {

/** In-memory template set, loaded from BIMG files. */
struct MemeTemplates
{
    std::map<std::string, Image> images;
};

/** Deterministic template art staged at /memes/<name>.bimg. */
void stageMemeAssets(bfs::InMemBackend &root, int width = 320,
                     int height = 240);
const std::vector<std::string> &memeTemplateNames();

/** The request handler, templated on the 64-bit integer type. */
template <typename I64>
net::HttpResponse handleMemeRequest(const MemeTemplates &templates,
                                    const net::HttpRequest &req);

extern template net::HttpResponse
handleMemeRequest<int64_t>(const MemeTemplates &, const net::HttpRequest &);
extern template net::HttpResponse
handleMemeRequest<rt::Int64>(const MemeTemplates &,
                             const net::HttpRequest &);

/** The Go program: loads templates from the Browsix FS, serves the port
 * named by env MEME_PORT (default 8080). Registered as "meme-server". */
void memeServerMain(rt::GoEnv &env);

} // namespace apps
} // namespace browsix
