#include "apps/meme/server.h"

#include "apps/httpd/httpd.h"
#include "apps/meme/png.h"
#include "net/http_server.h"

namespace browsix {
namespace apps {

const std::vector<std::string> &
memeTemplateNames()
{
    static const std::vector<std::string> names = {"wonka", "doge",
                                                   "philosoraptor"};
    return names;
}

void
stageMemeAssets(bfs::InMemBackend &root, int width, int height)
{
    uint32_t seed = 11;
    for (const auto &name : memeTemplateNames()) {
        Image img = makeTemplateImage(width, height, seed);
        seed = seed * 31 + 7;
        root.writeFile("/memes/" + name + ".bimg", encodeBimg(img));
    }
}

template <typename I64>
net::HttpResponse
handleMemeRequest(const MemeTemplates &templates,
                  const net::HttpRequest &req)
{
    net::HttpResponse resp;
    auto [path, query] = net::splitTarget(req.target);

    if (path == "/api/images") {
        std::string json = "[";
        bool first = true;
        for (const auto &[name, img] : templates.images) {
            if (!first)
                json += ",";
            first = false;
            json += "\"" + name + "\"";
        }
        json += "]";
        resp.status = 200;
        resp.headers["content-type"] = "application/json";
        resp.body.assign(json.begin(), json.end());
        return resp;
    }

    if (path == "/api/meme") {
        std::string tname =
            query.count("template") ? query.at("template") : "";
        auto it = templates.images.find(tname);
        if (it == templates.images.end()) {
            resp.status = 404;
            resp.reason = "Not Found";
            std::string msg = "unknown template";
            resp.body.assign(msg.begin(), msg.end());
            return resp;
        }
        std::string top = query.count("top") ? query.at("top") : "";
        std::string bottom =
            query.count("bottom") ? query.at("bottom") : "";

        Image img = it->second; // stateless: render onto a copy
        applyVignette<I64>(img);
        int scale = std::max(1, img.w / 160);
        if (!top.empty())
            drawMemeText<I64>(img, top, img.w / 2,
                              kGlyphH * scale / 2 + 4 * scale, scale);
        if (!bottom.empty())
            drawMemeText<I64>(img, bottom, img.w / 2,
                              img.h - kGlyphH * scale / 2 - 4 * scale,
                              scale);

        auto png = encodePng(img);
        resp.status = 200;
        resp.headers["content-type"] = "image/png";
        resp.body = std::move(png);
        return resp;
    }

    resp.status = 404;
    resp.reason = "Not Found";
    std::string msg = "no route for " + path;
    resp.body.assign(msg.begin(), msg.end());
    return resp;
}

template net::HttpResponse
handleMemeRequest<int64_t>(const MemeTemplates &, const net::HttpRequest &);
template net::HttpResponse
handleMemeRequest<rt::Int64>(const MemeTemplates &,
                             const net::HttpRequest &);

void
memeServerMain(rt::GoEnv &env)
{
    // Load every template from the shared filesystem (the paper's server
    // "reads base images and font files from the filesystem").
    auto templates = std::make_shared<MemeTemplates>();
    int err = 0;
    auto names = env.readDir("/memes", err);
    if (err != 0) {
        env.logf("meme-server: cannot read /memes");
        env.exit(1);
    }
    for (const auto &fname : names) {
        if (fname.size() < 5 ||
            fname.substr(fname.size() - 5) != ".bimg")
            continue;
        bfs::Buffer data;
        if (env.readFile("/memes/" + fname, data) != 0)
            continue;
        Image img;
        if (!decodeBimg(data, img))
            continue;
        templates->images[fname.substr(0, fname.size() - 5)] =
            std::move(img);
    }

    int port = 8080;
    auto it = env.environ().find("MEME_PORT");
    if (it != env.environ().end())
        port = std::atoi(it->second.c_str());

    int listener = env.listenTcp(port, 16);
    if (listener < 0) {
        env.logf("meme-server: listen failed");
        env.exit(1);
    }
    env.logf("meme-server: listening on " + std::to_string(port));

    bool trace = env.environ().count("MEME_TRACE") > 0;
    for (;;) {
        int conn = env.accept(listener);
        if (trace)
            env.logf("[srv] accepted fd=" + std::to_string(conn));
        if (conn < 0)
            break;
        // One goroutine per connection, Go-style; each drives the shared
        // net::HttpServer loop (keep-alive, pipelining, graceful close)
        // over the blocking Gopher transport. GopherJS build: int64
        // arithmetic is emulated, hence the rt::Int64 handler.
        env.go([&env, conn, templates]() {
            GoHttpTransport transport(env);
            net::HttpServer server(
                transport,
                [templates](const net::HttpRequest &req) {
                    return handleMemeRequest<rt::Int64>(*templates, req);
                });
            server.serveConn(conn); // closes conn
        });
    }
}

} // namespace apps
} // namespace browsix
