/**
 * @file
 * RGBA raster + 5x7 bitmap font + meme text rendering.
 *
 * Drawing is templated over the 64-bit integer type so the identical
 * numerical code runs natively (int64_t — the server on a real machine)
 * and through GopherJS int64 emulation (rt::Int64 — the server compiled
 * to JavaScript). The per-pixel fixed-point (26.6) transform arithmetic
 * is where the paper's in-browser meme-generation slowdown lives (§5.2).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/gopher/int64emu.h"

namespace browsix {
namespace apps {

/** Extract the numeric value from either 64-bit representation. */
inline int64_t
i64Value(int64_t v)
{
    return v;
}
inline int64_t
i64Value(const rt::Int64 &v)
{
    return v.toInt();
}

struct Rgba
{
    uint8_t r = 0, g = 0, b = 0, a = 255;
};

struct Image
{
    int w = 0;
    int h = 0;
    std::vector<uint8_t> rgba; // w*h*4

    Image() = default;
    Image(int width, int height, Rgba fill = Rgba{0, 0, 0, 255})
        : w(width), h(height), rgba(static_cast<size_t>(width) * height * 4)
    {
        for (int i = 0; i < w * h; i++) {
            rgba[i * 4 + 0] = fill.r;
            rgba[i * 4 + 1] = fill.g;
            rgba[i * 4 + 2] = fill.b;
            rgba[i * 4 + 3] = fill.a;
        }
    }

    bool
    inBounds(int x, int y) const
    {
        return x >= 0 && y >= 0 && x < w && y < h;
    }

    void
    set(int x, int y, Rgba c)
    {
        if (!inBounds(x, y))
            return;
        size_t i = (static_cast<size_t>(y) * w + x) * 4;
        rgba[i] = c.r;
        rgba[i + 1] = c.g;
        rgba[i + 2] = c.b;
        rgba[i + 3] = c.a;
    }

    Rgba
    get(int x, int y) const
    {
        Rgba c;
        if (!inBounds(x, y))
            return c;
        size_t i = (static_cast<size_t>(y) * w + x) * 4;
        c.r = rgba[i];
        c.g = rgba[i + 1];
        c.b = rgba[i + 2];
        c.a = rgba[i + 3];
        return c;
    }
};

/** 7 row-bitmask bytes (5 bits used) for a character; '?' for unknown. */
const uint8_t *glyph5x7(char c);

constexpr int kGlyphW = 5;
constexpr int kGlyphH = 7;

/**
 * Render meme caption text centered at (cx, cy) with integer scale,
 * white fill and black outline, using I64 fixed-point (26.6) transforms
 * per pixel — the int64-heavy inner loop.
 */
template <typename I64>
void
drawMemeText(Image &img, const std::string &text, int cx, int cy,
             int scale)
{
    if (text.empty())
        return;
    const I64 kOne(64); // 26.6 fixed point unit
    I64 sxf = I64(scale) * kOne;

    int text_w = static_cast<int>(text.size()) * (kGlyphW + 1) * scale;
    int x0 = cx - text_w / 2;
    int y0 = cy - (kGlyphH * scale) / 2;

    // Outline pass then fill pass.
    for (int pass = 0; pass < 2; pass++) {
        Rgba color = pass == 0 ? Rgba{0, 0, 0, 255}
                               : Rgba{255, 255, 255, 255};
        int expand = pass == 0 ? 1 : 0;
        int pen_x = x0;
        for (char raw : text) {
            char c = raw;
            if (c >= 'a' && c <= 'z')
                c = static_cast<char>(c - 'a' + 'A');
            const uint8_t *g = glyph5x7(c);
            // Per-destination-pixel inverse transform in I64 fixed point:
            // (dx, dy) -> glyph cell, with the multiply/divide chains a
            // Go font rasterizer performs.
            int cell_w = kGlyphW * scale;
            int cell_h = kGlyphH * scale;
            for (int dy = -expand; dy < cell_h + expand; dy++) {
                for (int dx = -expand; dx < cell_w + expand; dx++) {
                    I64 fx = I64(dx) * kOne;
                    I64 fy = I64(dy) * kOne;
                    I64 gx = fx / sxf;
                    I64 gy = fy / sxf;
                    I64 frac_x = fx - gx * sxf;
                    I64 frac_y = fy - gy * sxf;
                    (void)frac_x;
                    (void)frac_y;
                    int64_t gxi = i64Value(gx);
                    int64_t gyi = i64Value(gy);
                    int sample_x =
                        static_cast<int>(gxi < 0 ? 0
                                         : gxi >= kGlyphW ? kGlyphW - 1
                                                          : gxi);
                    int sample_y =
                        static_cast<int>(gyi < 0 ? 0
                                         : gyi >= kGlyphH ? kGlyphH - 1
                                                          : gyi);
                    bool on = (g[sample_y] >> (kGlyphW - 1 - sample_x)) & 1;
                    if (on)
                        img.set(pen_x + dx, y0 + dy, color);
                }
            }
            pen_x += (kGlyphW + 1) * scale;
        }
    }
}

/** Darken the whole frame slightly (per-pixel I64 blend — bulk work). */
template <typename I64>
void
applyVignette(Image &img)
{
    const I64 k255(255);
    for (int y = 0; y < img.h; y++) {
        // Distance-based attenuation in fixed point.
        I64 dy2 = I64(y - img.h / 2) * I64(y - img.h / 2);
        for (int x = 0; x < img.w; x++) {
            I64 dx2 = I64(x - img.w / 2) * I64(x - img.w / 2);
            I64 d2 = dx2 + dy2;
            I64 denom =
                I64(img.w / 2) * I64(img.w / 2) +
                I64(img.h / 2) * I64(img.h / 2);
            // attenuation = 255 - 40 * d2 / denom
            I64 att = k255 - (I64(40) * d2) / denom;
            int64_t a = i64Value(att);
            if (a < 0)
                a = 0;
            if (a > 255)
                a = 255;
            size_t i = (static_cast<size_t>(y) * img.w + x) * 4;
            img.rgba[i] =
                static_cast<uint8_t>((img.rgba[i] * a) / 255);
            img.rgba[i + 1] =
                static_cast<uint8_t>((img.rgba[i + 1] * a) / 255);
            img.rgba[i + 2] =
                static_cast<uint8_t>((img.rgba[i + 2] * a) / 255);
        }
    }
}

/** Trivial raw container ("BIMG"): w, h, then RGBA bytes. The staged
 * meme templates use it so the server's file reads are real but no PNG
 * decoder is needed. */
std::vector<uint8_t> encodeBimg(const Image &img);
bool decodeBimg(const std::vector<uint8_t> &data, Image &out);

/** Deterministic template art (gradient + pattern), by name seed. */
Image makeTemplateImage(int w, int h, uint32_t seed);

} // namespace apps
} // namespace browsix
