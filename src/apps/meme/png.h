/**
 * @file
 * PNG encoder: real CRC32 / Adler-32 / zlib framing, with stored
 * (uncompressed) deflate blocks. The output is a valid PNG any viewer
 * accepts; compression would add nothing to the experiments.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "apps/meme/image.h"

namespace browsix {
namespace apps {

uint32_t crc32(const uint8_t *data, size_t len, uint32_t seed = 0);
uint32_t adler32(const uint8_t *data, size_t len);

/** Encode 8-bit RGBA PNG. */
std::vector<uint8_t> encodePng(const Image &img);

/** Quick structural validation (signature + chunk CRCs). */
bool validatePng(const std::vector<uint8_t> &data);

} // namespace apps
} // namespace browsix
