#include "apps/meme/png.h"

#include <cstring>

namespace browsix {
namespace apps {

namespace {

const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool init = false;
    if (!init) {
        for (uint32_t n = 0; n < 256; n++) {
            uint32_t c = n;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[n] = c;
        }
        init = true;
    }
    return table;
}

void
putU32be(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v >> 24));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v));
}

uint32_t
readU32be(const uint8_t *p)
{
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

void
writeChunk(std::vector<uint8_t> &out, const char type[4],
           const std::vector<uint8_t> &payload)
{
    putU32be(out, static_cast<uint32_t>(payload.size()));
    size_t crc_start = out.size();
    out.insert(out.end(), type, type + 4);
    out.insert(out.end(), payload.begin(), payload.end());
    uint32_t crc =
        crc32(out.data() + crc_start, out.size() - crc_start);
    putU32be(out, crc);
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t len, uint32_t seed)
{
    const uint32_t *table = crcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; i++)
        c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
adler32(const uint8_t *data, size_t len)
{
    uint32_t a = 1, b = 0;
    for (size_t i = 0; i < len; i++) {
        a = (a + data[i]) % 65521;
        b = (b + a) % 65521;
    }
    return (b << 16) | a;
}

std::vector<uint8_t>
encodePng(const Image &img)
{
    std::vector<uint8_t> out = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A,
                                '\n'};

    std::vector<uint8_t> ihdr;
    putU32be(ihdr, static_cast<uint32_t>(img.w));
    putU32be(ihdr, static_cast<uint32_t>(img.h));
    ihdr.push_back(8);  // bit depth
    ihdr.push_back(6);  // color type RGBA
    ihdr.push_back(0);  // compression
    ihdr.push_back(0);  // filter
    ihdr.push_back(0);  // interlace
    writeChunk(out, "IHDR", ihdr);

    // Raw scanlines, each prefixed with filter byte 0.
    std::vector<uint8_t> raw;
    raw.reserve(static_cast<size_t>(img.h) * (img.w * 4 + 1));
    for (int y = 0; y < img.h; y++) {
        raw.push_back(0);
        const uint8_t *row = img.rgba.data() +
                             static_cast<size_t>(y) * img.w * 4;
        raw.insert(raw.end(), row, row + static_cast<size_t>(img.w) * 4);
    }

    // zlib stream: header, stored-deflate blocks, adler32.
    std::vector<uint8_t> z;
    z.push_back(0x78);
    z.push_back(0x01);
    size_t off = 0;
    while (off < raw.size()) {
        size_t n = std::min<size_t>(65535, raw.size() - off);
        bool last = off + n == raw.size();
        z.push_back(last ? 1 : 0);
        z.push_back(static_cast<uint8_t>(n & 0xFF));
        z.push_back(static_cast<uint8_t>(n >> 8));
        z.push_back(static_cast<uint8_t>(~n & 0xFF));
        z.push_back(static_cast<uint8_t>((~n >> 8) & 0xFF));
        z.insert(z.end(), raw.begin() + off, raw.begin() + off + n);
        off += n;
    }
    putU32be(z, adler32(raw.data(), raw.size()));
    writeChunk(out, "IDAT", z);
    writeChunk(out, "IEND", {});
    return out;
}

bool
validatePng(const std::vector<uint8_t> &data)
{
    static const uint8_t sig[8] = {0x89, 'P', 'N', 'G',
                                   '\r', '\n', 0x1A, '\n'};
    if (data.size() < 8 || std::memcmp(data.data(), sig, 8) != 0)
        return false;
    size_t off = 8;
    bool saw_iend = false;
    while (off + 12 <= data.size()) {
        uint32_t len = readU32be(data.data() + off);
        if (off + 12 + len > data.size())
            return false;
        uint32_t stored = readU32be(data.data() + off + 8 + len);
        uint32_t computed = crc32(data.data() + off + 4, len + 4);
        if (stored != computed)
            return false;
        if (std::memcmp(data.data() + off + 4, "IEND", 4) == 0)
            saw_iend = true;
        off += 12 + len;
    }
    return saw_iend && off == data.size();
}

} // namespace apps
} // namespace browsix
