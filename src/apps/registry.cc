#include "apps/registry.h"

#include "jsvm/util.h"

namespace browsix {
namespace apps {

namespace {
const std::string kMarker = "//:browsix-program:";
} // namespace

ProgramRegistry &
ProgramRegistry::instance()
{
    static ProgramRegistry registry;
    return registry;
}

void
ProgramRegistry::add(ProgramSpec spec)
{
    specs_[spec.name] = std::move(spec);
}

const ProgramSpec *
ProgramRegistry::find(const std::string &name) const
{
    auto it = specs_.find(name);
    return it == specs_.end() ? nullptr : &it->second;
}

bfs::Buffer
ProgramRegistry::bundleFor(const std::string &name) const
{
    const ProgramSpec *spec = find(name);
    if (!spec)
        jsvm::panic("ProgramRegistry: unknown program " + name);
    std::string header = kMarker + name + "\n";
    bfs::Buffer out(header.begin(), header.end());
    // Pad to the bundle's size: worker creation charges a parse cost per
    // byte, so a 8 MB browser-node bundle really costs startup time.
    size_t target = spec->bundleKb * 1024;
    if (out.size() < target) {
        std::string pad = "// bundle payload\n";
        while (out.size() < target) {
            size_t n = std::min(pad.size(), target - out.size());
            out.insert(out.end(), pad.begin(), pad.begin() + n);
        }
    }
    return out;
}

std::string
ProgramRegistry::programFromBundle(const bfs::Buffer &bytes)
{
    if (bytes.size() < kMarker.size())
        return "";
    if (!std::equal(kMarker.begin(), kMarker.end(), bytes.begin()))
        return "";
    std::string name;
    for (size_t i = kMarker.size(); i < bytes.size(); i++) {
        char c = static_cast<char>(bytes[i]);
        if (c == '\n' || c == '\r')
            break;
        name.push_back(c);
    }
    return name;
}

} // namespace apps
} // namespace browsix
