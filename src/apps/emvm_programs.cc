#include "apps/emvm_programs.h"

#include "jsvm/util.h"
#include "runtime/emvm/assembler.h"

namespace browsix {
namespace apps {

namespace {

bfs::Buffer
assembleOrDie(const char *src)
{
    emvm::Image img;
    std::string err;
    if (!emvm::assemble(src, img, err))
        jsvm::panic("emvm program assembly failed: " + err);
    return img.serialize();
}

} // namespace

bfs::Buffer
forktestImageBytes()
{
    // Traps: fork=2, write=4, wait4=114.
    static const char *src = R"(
.memory 4096
.data 0 "hello from child\n"
.data 64 "hello from parent\n"
.func main 0 2
    push 2
    syscall 0          ; fork()
    storel 0
    loadl 0
    jz child
    ; parent: wait4(child, 0, 0) then announce
    push 114
    loadl 0
    push 0
    push 0
    syscall 3
    pop
    push 4
    push 1
    push 64
    push 18
    syscall 3          ; write(1, "hello from parent\n", 18)
    pop
    push 0
    halt
child:
    push 4
    push 1
    push 0
    push 17
    syscall 3          ; write(1, "hello from child\n", 17)
    pop
    push 0
    halt
.end
)";
    static const bfs::Buffer bytes = assembleOrDie(src);
    return bytes;
}

bfs::Buffer
primesImageBytes()
{
    // Counts primes below the bound at memory[0] (default 2000), prints
    // the count as decimal, exits 0. Trial division: honest interpreted
    // compute.
    static const char *src = R"(
.memory 4096
.data 0 208 7 0 0        ; bound = 2000 (little-endian u32)
.func is_prime 1 3
    ; locals: 0=n 1=i
    loadl 0
    push 2
    lt
    jz ge2
    push 0
    ret
ge2:
    push 2
    storel 1
loop:
    loadl 1
    loadl 1
    mul
    loadl 0
    gt
    jnz prime
    loadl 0
    loadl 1
    mods
    jz notprime
    loadl 1
    push 1
    add
    storel 1
    jmp loop
notprime:
    push 0
    ret
prime:
    push 1
    ret
.end
.func main 0 4
    ; locals: 0=bound 1=n 2=count
    push 0
    load32
    storel 0
    push 2
    storel 1
    push 0
    storel 2
scan:
    loadl 1
    loadl 0
    ge
    jnz done
    loadl 1
    call is_prime
    jz next
    loadl 2
    push 1
    add
    storel 2
next:
    loadl 1
    push 1
    add
    storel 1
    jmp scan
done:
    ; print count as decimal at mem[128..], then write()
    loadl 2
    call print_u32
    push 0
    halt
.end
.func print_u32 1 4
    ; locals: 0=value 1=pos
    push 160
    storel 1
digits:
    loadl 1
    push 1
    sub
    storel 1
    loadl 1
    loadl 0
    push 10
    mods
    push 48
    add
    store8
    loadl 0
    push 10
    divs
    storel 0
    loadl 0
    jnz digits
    ; newline at 160
    push 160
    push 10
    store8
    ; write(1, pos, 161 - pos)
    push 4
    push 1
    loadl 1
    push 161
    loadl 1
    sub
    syscall 3
    pop
    push 0
    ret
.end
)";
    static const bfs::Buffer bytes = assembleOrDie(src);
    return bytes;
}

bfs::Buffer
helloImageBytes()
{
    static const char *src = R"(
.memory 256
.data 0 "hello from the emterpreter\n"
.func main 0 1
    push 4
    push 1
    push 0
    push 27
    syscall 3
    pop
    push 0
    halt
.end
)";
    static const bfs::Buffer bytes = assembleOrDie(src);
    return bytes;
}

} // namespace apps
} // namespace browsix
