#include "apps/httpd/httpd.h"

#include <algorithm>
#include <cstdlib>

#include "apps/meme/server.h"
#include "runtime/syscall_proto.h"

namespace browsix {
namespace apps {

// ---------------------------------------------------------------------------
// EmHttpTransport
// ---------------------------------------------------------------------------

int64_t
EmHttpTransport::read(int fd, bfs::Buffer &out, size_t maxlen)
{
    bfs::Buffer tmp;
    int64_t n = env_.read(fd, tmp, maxlen);
    if (n > 0)
        out.insert(out.end(), tmp.begin(), tmp.end());
    return n;
}

int64_t
EmHttpTransport::writev(int fd, const std::vector<bfs::Buffer> &bufs)
{
    std::vector<std::string> parts;
    parts.reserve(bufs.size());
    for (const auto &b : bufs)
        parts.emplace_back(b.begin(), b.end());
    return env_.writev(fd, parts);
}

int
EmHttpTransport::shutdownWrite(int fd)
{
    return env_.shutdown(fd, sys::SHUT_WR_);
}

int
EmHttpTransport::close(int fd)
{
    return env_.close(fd);
}

int64_t
EmHttpTransport::fileSize(const std::string &path)
{
    sys::StatX st;
    int rc = env_.stat(path, st);
    return rc < 0 ? rc : static_cast<int64_t>(st.size);
}

int64_t
EmHttpTransport::sendFile(int fd, const std::string &path, size_t len)
{
    int in = env_.open(path, 0);
    if (in < 0)
        return in;
    int64_t sent = 0;
    while (sent < static_cast<int64_t>(len)) {
        int64_t r = env_.sendfile(fd, in, sent,
                                  static_cast<int64_t>(len) - sent);
        if (r < 0) {
            env_.close(in);
            return r;
        }
        if (r == 0)
            break; // EOF: file shorter than advertised
        sent += r;
    }
    env_.close(in);
    return sent;
}

int
EmHttpTransport::accept(int listener_fd)
{
    // Only called after the listener reported POLLIN, so the backlog is
    // non-empty and the blocking accept returns without parking.
    return env_.accept(listener_fd);
}

int
EmHttpTransport::epollCreate()
{
    return env_.epollCreate();
}

int
EmHttpTransport::epollCtl(int epfd, int op, int fd, int events)
{
    return env_.epollCtl(epfd, op, fd, events);
}

int
EmHttpTransport::epollWait(int epfd, std::vector<Event> &out,
                           size_t maxevents)
{
    std::vector<rt::EmEnv::PollSpec> specs(maxevents);
    int n = env_.epollWait(epfd, specs);
    out.clear();
    for (int i = 0; i < n && i < static_cast<int>(maxevents); i++)
        out.push_back(Event{specs[static_cast<size_t>(i)].fd,
                            specs[static_cast<size_t>(i)].revents});
    return n;
}

void
EmHttpTransport::readBatch(const std::vector<int> &fds, size_t maxlen,
                           std::vector<bfs::Buffer> &outs,
                           std::vector<int64_t> &ns)
{
    rt::RingSyscalls *ring = env_.ring();
    rt::SyncSyscalls *sync = env_.syncCalls();
    if (!ring || !sync) {
        net::HttpEventTransport::readBatch(fds, maxlen, outs, ns);
        return;
    }
    outs.assign(fds.size(), {});
    ns.assign(fds.size(), 0);
    // The read buffers live in the shared heap's scratch region (~1 MiB);
    // chunk the batch so one pass never outgrows it or the SQ.
    constexpr size_t kScratchBudget = 512 * 1024;
    size_t per = std::min<size_t>(ring->capacity(),
                                  kScratchBudget / std::max<size_t>(1, maxlen));
    per = std::max<size_t>(1, per);
    std::vector<uint32_t> ptrs, seqs;
    for (size_t base = 0; base < fds.size(); base += per) {
        size_t count = std::min(per, fds.size() - base);
        sync->resetScratch();
        ptrs.clear();
        seqs.clear();
        // Every ready connection's READ rides one SQ batch: a single
        // doorbell (often zero, when the kernel's drain is already
        // scheduled) covers the whole pass.
        for (size_t i = 0; i < count; i++) {
            ptrs.push_back(sync->alloc(maxlen));
            seqs.push_back(ring->submit(
                sys::READ,
                {fds[base + i], static_cast<int32_t>(ptrs[i]),
                 static_cast<int32_t>(maxlen), 0, 0, 0}));
        }
        ring->flush();
        for (size_t i = 0; i < count; i++) {
            rt::RingSyscalls::Completion c = ring->wait(seqs[i]);
            ns[base + i] = c.r0;
            if (c.r0 > 0)
                outs[base + i].assign(
                    sync->heapData() + ptrs[i],
                    sync->heapData() + ptrs[i] + c.r0);
        }
    }
}

// ---------------------------------------------------------------------------
// GoHttpTransport
// ---------------------------------------------------------------------------

int64_t
GoHttpTransport::read(int fd, bfs::Buffer &out, size_t maxlen)
{
    bfs::Buffer tmp;
    int64_t n = env_.read(fd, tmp, maxlen);
    if (n > 0)
        out.insert(out.end(), tmp.begin(), tmp.end());
    return n;
}

int64_t
GoHttpTransport::writev(int fd, const std::vector<bfs::Buffer> &bufs)
{
    size_t total = 0;
    for (const auto &b : bufs)
        total += b.size();
    std::string all;
    all.reserve(total);
    for (const auto &b : bufs)
        all.append(b.begin(), b.end());
    return env_.write(fd, all);
}

int
GoHttpTransport::shutdownWrite(int fd)
{
    return env_.shutdown(fd, sys::SHUT_WR_);
}

int
GoHttpTransport::close(int fd)
{
    return env_.close(fd);
}

// ---------------------------------------------------------------------------
// meme-httpd
// ---------------------------------------------------------------------------

namespace {

int64_t
readWholeFile(rt::EmEnv &env, const std::string &path, bfs::Buffer &out)
{
    int fd = env.open(path, 0);
    if (fd < 0)
        return fd;
    out.clear();
    for (;;) {
        bfs::Buffer chunk;
        int64_t n = env.read(fd, chunk, 64 * 1024);
        if (n < 0) {
            env.close(fd);
            return n;
        }
        if (n == 0)
            break;
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    env.close(fd);
    return static_cast<int64_t>(out.size());
}

void
loadTemplates(rt::EmEnv &env, MemeTemplates &templates)
{
    int dfd = env.open("/memes", 0);
    if (dfd < 0)
        return;
    std::vector<sys::Dirent> ents;
    int rc = env.getdents(dfd, ents);
    env.close(dfd);
    if (rc != 0)
        return;
    for (const auto &e : ents) {
        const std::string &fname = e.name;
        if (fname.size() < 5 || fname.substr(fname.size() - 5) != ".bimg")
            continue;
        bfs::Buffer data;
        if (readWholeFile(env, "/memes/" + fname, data) < 0)
            continue;
        Image img;
        if (!decodeBimg(data, img))
            continue;
        templates.images[fname.substr(0, fname.size() - 5)] =
            std::move(img);
    }
}

} // namespace

int
memeHttpdMain(rt::EmEnv &env)
{
    MemeTemplates templates;
    loadTemplates(env, templates);

    int port = 8080;
    int backlog = 64;
    uint64_t max_requests = 0;
    const auto &args = env.argv();
    if (args.size() > 1)
        port = std::atoi(args[1].c_str());
    if (args.size() > 2)
        backlog = std::atoi(args[2].c_str());
    if (args.size() > 3)
        max_requests = std::strtoull(args[3].c_str(), nullptr, 10);

    int fd = env.socket();
    if (fd < 0)
        return 1;
    if (env.bind(fd, port) < 0)
        return 1;
    if (env.listen(fd, backlog) < 0)
        return 1;

    EmHttpTransport transport(env);
    net::HttpServerOptions opts;
    opts.maxRequests = max_requests;
    net::HttpServer server(
        transport,
        [&templates](const net::HttpRequest &req) {
            auto [path, query] = net::splitTarget(req.target);
            if (path.rfind("/memes/", 0) == 0 &&
                path.find("..") == std::string::npos) {
                // Static template art: the body never enters this
                // process — HttpServer streams it via sendfile.
                net::HttpResponse resp;
                resp.headers["content-type"] = "application/octet-stream";
                resp.bodyFile = path;
                return resp;
            }
            net::HttpResponse resp =
                handleMemeRequest<int64_t>(templates, req);
            if (query.count("chunked"))
                resp.headers["transfer-encoding"] = "chunked";
            return resp;
        },
        opts);
    int rc = server.run(fd);
    env.close(fd);
    return rc < 0 ? 1 : 0;
}

} // namespace apps
} // namespace browsix
