/**
 * @file
 * meme-httpd: the meme service re-hosted on net::HttpServer's ring-native
 * serving path — one Emscripten/ring process, one epoll loop, every
 * connection multiplexed through batched SQEs (§5.2 scaled from
 * request/response to connection-scale serving).
 *
 * Two HttpTransport bindings live here, one per runtime family:
 *
 *  - EmHttpTransport (HttpEventTransport): the EmEnv ring binding used by
 *    HttpServer::run. Readiness comes from epoll, reads from every ready
 *    connection are submitted as one READ-SQE batch under a single
 *    doorbell, responses go out as gather writev SQEs, and static bodies
 *    stream kernel-side via sendfile.
 *
 *  - GoHttpTransport: the blocking GoEnv binding used by serveConn in the
 *    goroutine-per-connection meme-server (apps/meme/server.cc) — the
 *    paper's unmodified-Go shape, now with keep-alive and pipelining via
 *    the shared server loop.
 */
#pragma once

#include <string>
#include <vector>

#include "net/http_server.h"
#include "runtime/emscripten/em_runtime.h"
#include "runtime/gopher/go_runtime.h"

namespace browsix {
namespace apps {

/** net::HttpEventTransport over an EmEnv (Sync or Ring mode; Ring gets
 * the batched read path). All calls must run on the program thread. */
class EmHttpTransport : public net::HttpEventTransport
{
  public:
    explicit EmHttpTransport(rt::EmEnv &env) : env_(env) {}

    int64_t read(int fd, bfs::Buffer &out, size_t maxlen) override;
    int64_t writev(int fd, const std::vector<bfs::Buffer> &bufs) override;
    int shutdownWrite(int fd) override;
    int close(int fd) override;
    int64_t fileSize(const std::string &path) override;
    int64_t sendFile(int fd, const std::string &path, size_t len) override;

    int accept(int listener_fd) override;
    int epollCreate() override;
    int epollCtl(int epfd, int op, int fd, int events) override;
    int epollWait(int epfd, std::vector<Event> &out,
                  size_t maxevents) override;
    void readBatch(const std::vector<int> &fds, size_t maxlen,
                   std::vector<bfs::Buffer> &outs,
                   std::vector<int64_t> &ns) override;

  private:
    rt::EmEnv &env_;
};

/** Blocking net::HttpTransport over a GoEnv — drives serveConn from one
 * goroutine per connection. */
class GoHttpTransport : public net::HttpTransport
{
  public:
    explicit GoHttpTransport(rt::GoEnv &env) : env_(env) {}

    int64_t read(int fd, bfs::Buffer &out, size_t maxlen) override;
    int64_t writev(int fd, const std::vector<bfs::Buffer> &bufs) override;
    int shutdownWrite(int fd) override;
    int close(int fd) override;

  private:
    rt::GoEnv &env_;
};

/**
 * The meme HTTP daemon (registered as "meme-httpd", RuntimeKind::EmRing):
 * serves the /api/images and /api/meme routes plus /memes/<name>.bimg
 * static files (sendfile) through HttpServer::run.
 *
 *   argv: meme-httpd [port=8080] [backlog=64] [max_requests=0]
 *
 * max_requests > 0 makes the daemon drain and exit after serving that
 * many requests — how bench/http_serve.cc bounds a run.
 */
int memeHttpdMain(rt::EmEnv &env);

} // namespace apps
} // namespace browsix
