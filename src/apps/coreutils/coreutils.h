/**
 * @file
 * Unix utilities for the Browsix terminal, "written for Node.js" (§5.1.2):
 * cat, cp, curl, echo, env, false, grep, head, ls, mkdir, pwd, rm, rmdir,
 * seq, sha1sum, sort, stat, tail, tee, touch, true, wc, xargs.
 *
 * Each runs equivalently under browser-node in Browsix and under the
 * direct (Linux-Node stand-in) bindings — exactly the property Figure 9
 * measures. registerCoreutils() installs them in the node-util registry.
 *
 * nativeSha1sum/nativeLs are plain-C equivalents (GNU coreutils' role in
 * Figure 9's "Native" column), implemented directly against the VFS.
 */
#pragma once

#include <string>

#include "bfs/vfs.h"
#include "runtime/emscripten/em_runtime.h"

namespace browsix {
namespace apps {

/** Register all utilities with the node runtime (idempotent). */
void registerCoreutils();

/**
 * `els` (em_ls.cc): ls compiled against the Emscripten ring runtime.
 * Flags: -l (long), -R (recurse), --serial (one lstat round-trip per
 * entry instead of the batched statBatch sweep — the A/B baseline).
 * Registered as program "els" by registerAllPrograms().
 */
int elsMain(rt::EmEnv &env);

/**
 * `ecat` (em_cat.cc): cat compiled against the Emscripten ring runtime.
 * Streams file -> stdout through the zero-copy vectored data plane: a
 * window of pread SQEs per doorbell, one writev SQE per round.
 * --serial = one read + one write round-trip per chunk (the A/B
 * baseline). Registered as program "ecat" by registerAllPrograms().
 */
int ecatMain(rt::EmEnv &env);

/** Figure 9 native baselines: direct VFS access, native SHA-1. */
std::string nativeSha1sum(bfs::Vfs &vfs, const std::string &path);
std::string nativeLs(bfs::Vfs &vfs, const std::string &path, bool longfmt);
std::string nativeCat(bfs::Vfs &vfs, const std::string &path);
std::string nativeWc(bfs::Vfs &vfs, const std::string &path);

} // namespace apps
} // namespace browsix
