#include "apps/coreutils/sha1.h"

#include <cmath>
#include <cstring>

namespace browsix {
namespace apps {

namespace {

inline uint32_t
rotl(uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

/** Pad the message per FIPS 180 and return the padded buffer. */
std::vector<uint8_t>
padMessage(const uint8_t *data, size_t len)
{
    std::vector<uint8_t> m(data, data + len);
    uint64_t bits = static_cast<uint64_t>(len) * 8;
    m.push_back(0x80);
    while (m.size() % 64 != 56)
        m.push_back(0);
    for (int i = 7; i >= 0; i--)
        m.push_back(static_cast<uint8_t>(bits >> (i * 8)));
    return m;
}

Sha1Digest
digestFromWords(const uint32_t h[5])
{
    Sha1Digest d;
    for (int i = 0; i < 5; i++) {
        d[i * 4 + 0] = static_cast<uint8_t>(h[i] >> 24);
        d[i * 4 + 1] = static_cast<uint8_t>(h[i] >> 16);
        d[i * 4 + 2] = static_cast<uint8_t>(h[i] >> 8);
        d[i * 4 + 3] = static_cast<uint8_t>(h[i]);
    }
    return d;
}

} // namespace

Sha1Digest
sha1Native(const uint8_t *data, size_t len)
{
    uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                     0xC3D2E1F0};
    std::vector<uint8_t> m = padMessage(data, len);

    uint32_t w[80];
    for (size_t off = 0; off < m.size(); off += 64) {
        for (int i = 0; i < 16; i++) {
            w[i] = (static_cast<uint32_t>(m[off + i * 4]) << 24) |
                   (static_cast<uint32_t>(m[off + i * 4 + 1]) << 16) |
                   (static_cast<uint32_t>(m[off + i * 4 + 2]) << 8) |
                   static_cast<uint32_t>(m[off + i * 4 + 3]);
        }
        for (int i = 16; i < 80; i++)
            w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

        uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
        for (int i = 0; i < 80; i++) {
            uint32_t f, k;
            if (i < 20) {
                f = (b & c) | (~b & d);
                k = 0x5A827999;
            } else if (i < 40) {
                f = b ^ c ^ d;
                k = 0x6ED9EBA1;
            } else if (i < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8F1BBCDC;
            } else {
                f = b ^ c ^ d;
                k = 0xCA62C1D6;
            }
            uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = tmp;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
    }
    return digestFromWords(h);
}

namespace {

// --- "JavaScript number" 32-bit ops: doubles + masking, like an engine
// --- running untyped code (or asm.js-ignorant code) would.

constexpr double kTwo32 = 4294967296.0;

inline double
jsMask32(double x)
{
    // x >>> 0
    x = std::floor(x);
    x = x - std::floor(x / kTwo32) * kTwo32;
    return x;
}

inline double
jsAdd(double a, double b)
{
    return jsMask32(a + b);
}

inline double
jsRotl(double x, int n)
{
    double hi = jsMask32(x * std::pow(2.0, n));
    double lo = std::floor(x / std::pow(2.0, 32 - n));
    return jsMask32(hi + lo);
}

inline double
jsBit(double a, double b, char op)
{
    // JS bitwise ops coerce through ToInt32; model the coercion cost by
    // converting each time.
    uint32_t x = static_cast<uint32_t>(jsMask32(a));
    uint32_t y = static_cast<uint32_t>(jsMask32(b));
    uint32_t z;
    switch (op) {
      case '&': z = x & y; break;
      case '|': z = x | y; break;
      case '^': z = x ^ y; break;
      default: z = 0;
    }
    return static_cast<double>(z);
}

inline double
jsNot(double a)
{
    return static_cast<double>(~static_cast<uint32_t>(jsMask32(a)));
}

} // namespace

Sha1Digest
sha1Js(const uint8_t *data, size_t len)
{
    double h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE,
           h3 = 0x10325476, h4 = 0xC3D2E1F0;
    std::vector<uint8_t> m = padMessage(data, len);

    double w[80];
    for (size_t off = 0; off < m.size(); off += 64) {
        for (int i = 0; i < 16; i++) {
            w[i] = m[off + i * 4] * 16777216.0 +
                   m[off + i * 4 + 1] * 65536.0 +
                   m[off + i * 4 + 2] * 256.0 + m[off + i * 4 + 3];
        }
        for (int i = 16; i < 80; i++) {
            double x = jsBit(jsBit(w[i - 3], w[i - 8], '^'),
                             jsBit(w[i - 14], w[i - 16], '^'), '^');
            w[i] = jsRotl(x, 1);
        }

        double a = h0, b = h1, c = h2, d = h3, e = h4;
        for (int i = 0; i < 80; i++) {
            double f, k;
            if (i < 20) {
                f = jsBit(jsBit(b, c, '&'), jsBit(jsNot(b), d, '&'), '|');
                k = 0x5A827999;
            } else if (i < 40) {
                f = jsBit(jsBit(b, c, '^'), d, '^');
                k = 0x6ED9EBA1;
            } else if (i < 60) {
                f = jsBit(jsBit(jsBit(b, c, '&'), jsBit(b, d, '&'), '|'),
                          jsBit(c, d, '&'), '|');
                k = 0x8F1BBCDC;
            } else {
                f = jsBit(jsBit(b, c, '^'), d, '^');
                k = 0xCA62C1D6;
            }
            double tmp =
                jsAdd(jsAdd(jsAdd(jsAdd(jsRotl(a, 5), f), e), k), w[i]);
            e = d;
            d = c;
            c = jsRotl(b, 30);
            b = a;
            a = tmp;
        }
        h0 = jsAdd(h0, a);
        h1 = jsAdd(h1, b);
        h2 = jsAdd(h2, c);
        h3 = jsAdd(h3, d);
        h4 = jsAdd(h4, e);
    }
    uint32_t h[5] = {
        static_cast<uint32_t>(h0), static_cast<uint32_t>(h1),
        static_cast<uint32_t>(h2), static_cast<uint32_t>(h3),
        static_cast<uint32_t>(h4)};
    return digestFromWords(h);
}

std::string
sha1Hex(const Sha1Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(40);
    for (uint8_t b : d) {
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xf]);
    }
    return out;
}

} // namespace apps
} // namespace browsix
