/**
 * @file
 * SHA-1, twice: a native C implementation (GNU coreutils' sha1sum stands
 * on this side of Figure 9) and a "JavaScript semantics" implementation —
 * every 32-bit operation performed on doubles with explicit masking and
 * floor, the way a JS engine that hasn't proven int32-ness executes it.
 * The gap between the two is the honest source of the "most of the
 * overhead can be attributed to JavaScript" row of Figure 9.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace browsix {
namespace apps {

using Sha1Digest = std::array<uint8_t, 20>;

/** Native (uint32) SHA-1. */
Sha1Digest sha1Native(const uint8_t *data, size_t len);

/** JS-semantics SHA-1: arithmetic through doubles with |0-style masking. */
Sha1Digest sha1Js(const uint8_t *data, size_t len);

std::string sha1Hex(const Sha1Digest &d);

inline Sha1Digest
sha1Native(const std::vector<uint8_t> &v)
{
    return sha1Native(v.data(), v.size());
}
inline Sha1Digest
sha1Js(const std::vector<uint8_t> &v)
{
    return sha1Js(v.data(), v.size());
}

} // namespace apps
} // namespace browsix
