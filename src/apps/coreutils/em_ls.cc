/**
 * @file
 * `els`: ls "compiled" against the Emscripten runtime (RuntimeKind::EmRing)
 * — the stat-heavy coreutils hot path from Figure 9's `ls` row, rebuilt on
 * the batched syscall transport. Listing a directory costs one
 * open/getdents/close plus one lstat per entry; a serial runner pays a
 * full syscall round-trip (doorbell message + Atomics wake) for each of
 * those lstats, while `els` sweeps every entry of a directory through
 * EmEnv::statBatch — one ring doorbell and one wake per chunk. -R recurses
 * (the `ls -lR` workload), -l prints the long format.
 */
#include "apps/coreutils/coreutils.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "bfs/path.h"
#include "runtime/emscripten/em_runtime.h"

namespace browsix {
namespace apps {

namespace {

/** One directory level: list, batch-lstat, print, recurse. Output is
 * collected as fragments and gathered by one writev sweep at the end
 * (EmEnv::writev) — no giant concatenation, no ring entry per line. */
int
listDir(rt::EmEnv &env, const std::string &path, bool longfmt,
        bool recursive, bool serial_stats, std::vector<std::string> &out)
{
    int fd = env.open(path, 0);
    if (fd < 0) {
        out.push_back("els: cannot access '" + path + "'\n");
        return 2;
    }
    std::vector<sys::Dirent> entries;
    int rc = env.getdents(fd, entries);
    env.close(fd);
    if (rc != 0) {
        out.push_back("els: cannot list '" + path + "'\n");
        return 2;
    }

    std::vector<std::string> names;
    for (const auto &e : entries) {
        if (e.name != "." && e.name != "..")
            names.push_back(e.name);
    }
    std::sort(names.begin(), names.end());

    std::vector<std::string> full;
    full.reserve(names.size());
    for (const auto &n : names)
        full.push_back(bfs::joinPath(path, n));

    // The hot loop: every entry's metadata — needed for the long format
    // and to find subdirectories to recurse into; a plain listing skips
    // it entirely (getdents already named everything). Batched by
    // default (one doorbell per chunk); --serial preserves the
    // one-call-at-a-time pattern for A/B measurement.
    std::vector<rt::EmEnv::StatResult> sts;
    if (longfmt || recursive) {
        if (serial_stats) {
            sts.resize(full.size());
            for (size_t i = 0; i < full.size(); i++)
                sts[i].err = env.lstat(full[i], sts[i].st);
        } else {
            sts = env.statBatch(full, /*follow=*/false);
        }
    }

    if (recursive)
        out.push_back(path + ":\n");
    std::vector<std::string> subdirs;
    for (size_t i = 0; i < names.size(); i++) {
        if (i < sts.size() && sts[i].err == 0 && sts[i].st.isDir())
            subdirs.push_back(full[i]);
        if (!longfmt) {
            out.push_back(names[i] + "\n");
            continue;
        }
        std::ostringstream os;
        if (sts[i].err != 0) {
            os << "?????????? " << names[i] << "\n";
        } else {
            const sys::StatX &st = sts[i].st;
            os << (st.isDir() ? 'd' : st.isSymlink() ? 'l' : '-')
               << "rw-r--r-- " << st.nlink << " " << st.size << " "
               << names[i] << "\n";
        }
        out.push_back(os.str());
    }

    int worst = 0;
    if (recursive) {
        for (const auto &d : subdirs) {
            out.push_back("\n");
            worst = std::max(
                worst, listDir(env, d, longfmt, true, serial_stats, out));
        }
    }
    return worst;
}

} // namespace

int
elsMain(rt::EmEnv &env)
{
    bool longfmt = false;
    bool recursive = false;
    bool serial_stats = false;
    std::vector<std::string> paths;
    const auto &argv = env.argv();
    for (size_t i = 1; i < argv.size(); i++) {
        const std::string &a = argv[i];
        if (a == "-l")
            longfmt = true;
        else if (a == "-R")
            recursive = true;
        else if (a == "-lR" || a == "-Rl")
            longfmt = recursive = true;
        else if (a == "--serial")
            serial_stats = true;
        else
            paths.push_back(a);
    }
    if (paths.empty())
        paths.push_back(env.getcwd());

    int worst = 0;
    std::vector<std::string> out;
    for (const auto &p : paths)
        worst = std::max(
            worst, listDir(env, p, longfmt, recursive, serial_stats, out));
    env.writev(1, out);
    return worst;
}

} // namespace apps
} // namespace browsix
