/**
 * @file
 * `ecat`: cat "compiled" against the Emscripten ring runtime
 * (RuntimeKind::EmRing) — the data-plane hot path rebuilt on the
 * zero-copy vectored transport. Each round submits a window of pread
 * SQEs under one doorbell (the kernel fills the chunks straight into the
 * guest heap via preadInto), then gathers every filled chunk to stdout
 * with a single writev SQE (the kernel consumes the same heap windows
 * via writeFrom — consecutive scratch chunks coalesce into one
 * contiguous run). --serial preserves the one-call-per-chunk
 * read-then-write pattern for A/B measurement.
 */
#include "apps/coreutils/coreutils.h"

#include <cstring>
#include <vector>

#include "runtime/emscripten/em_runtime.h"

namespace browsix {
namespace apps {

namespace {

constexpr int32_t kChunk = 16 * 1024;
constexpr int kWindow = 8; // pread SQEs in flight per round

/** One chunk at a time: read round-trip, write round-trip. */
int
catSerial(rt::EmEnv &env, int fd)
{
    int64_t off = 0;
    for (;;) {
        bfs::Buffer buf;
        int64_t n = env.pread(fd, buf, kChunk, off);
        if (n < 0)
            return 1;
        if (n == 0)
            break;
        if (env.write(1, buf.data(), static_cast<size_t>(n)) != n)
            return 1;
        off += n;
        if (n < kChunk)
            break;
    }
    return 0;
}

/** A window of preads under one doorbell, then one writev SQE. */
int
catBatched(rt::EmEnv &env, int fd)
{
    rt::RingSyscalls *ring = env.ring();
    rt::SyncSyscalls *sync = env.syncCalls();
    if (!ring || !sync)
        return catSerial(env, fd);
    int64_t off = 0;
    for (;;) {
        sync->resetScratch();
        std::vector<uint32_t> bufs;
        std::vector<uint32_t> seqs;
        for (int i = 0; i < kWindow; i++) {
            uint32_t b = sync->alloc(kChunk);
            bufs.push_back(b);
            seqs.push_back(ring->submit(
                sys::PREAD,
                {fd, static_cast<int32_t>(b), kChunk,
                 static_cast<int32_t>(off + int64_t{i} * kChunk), 0, 0}));
        }
        ring->flush(); // one doorbell covers the whole read window
        std::vector<sys::IoVec> iovs;
        int64_t got = 0;
        bool eof = false;
        for (int i = 0; i < kWindow; i++) {
            rt::RingSyscalls::Completion c = ring->wait(seqs[i]);
            if (c.r0 < 0)
                return 1;
            if (c.r0 > 0)
                iovs.push_back(sys::IoVec{static_cast<int32_t>(bufs[i]),
                                          c.r0});
            got += c.r0;
            if (c.r0 < kChunk)
                eof = true;
        }
        if (!iovs.empty()) {
            // The filled chunks go out as one gather SQE; adjacent
            // chunks are contiguous in the heap, so the kernel drives
            // them as a single run.
            uint32_t seq = ring->submitv(sys::WRITEV, 1, iovs);
            ring->flush();
            if (ring->wait(seq).r0 != got)
                return 1;
        }
        off += got;
        if (eof || got == 0)
            break;
    }
    return 0;
}

} // namespace

int
ecatMain(rt::EmEnv &env)
{
    bool serial = false;
    std::vector<std::string> paths;
    const auto &argv = env.argv();
    for (size_t i = 1; i < argv.size(); i++) {
        if (argv[i] == "--serial")
            serial = true;
        else
            paths.push_back(argv[i]);
    }
    if (paths.empty()) {
        env.write(2, std::string("ecat: missing operand\n"));
        return 2;
    }
    int worst = 0;
    for (const auto &p : paths) {
        int fd = env.open(p, 0);
        if (fd < 0) {
            env.write(2, "ecat: cannot open '" + p + "'\n");
            worst = 2;
            continue;
        }
        int rc = serial ? catSerial(env, fd) : catBatched(env, fd);
        env.close(fd);
        if (rc > worst)
            worst = rc;
    }
    return worst;
}

} // namespace apps
} // namespace browsix
