#include "apps/coreutils/coreutils.h"

#include <algorithm>
#include <memory>
#include <regex>
#include <sstream>

#include "apps/coreutils/sha1.h"
#include "bfs/path.h"
#include "net/http.h"
#include "runtime/node/node_runtime.h"

namespace browsix {
namespace apps {

namespace {

using rt::NodeApi;
using Api = std::shared_ptr<NodeApi>;

std::vector<std::string>
operands(const Api &api)
{
    // argv = [node, script, args...]
    std::vector<std::string> out;
    for (size_t i = 2; i < api->argv.size(); i++)
        out.push_back(api->argv[i]);
    return out;
}

std::string
progName(const Api &api)
{
    return api->argv.size() > 1 ? bfs::basename(api->argv[1]) : "?";
}

void
fail(const Api &api, const std::string &msg, int code = 1)
{
    api->stderrWrite(progName(api) + ": " + msg + "\n",
                     [api, code](int) { api->exit(code); });
}

/** Concatenate stdin until EOF. */
void
slurpStdin(const Api &api, std::function<void(bfs::Buffer)> cb)
{
    auto acc = std::make_shared<bfs::Buffer>();
    auto step = std::make_shared<std::function<void()>>();
    *step = [api, acc, step, cb]() {
        api->stdinRead([api, acc, step, cb](int err, bfs::Buffer data) {
            if (err || data.empty()) {
                cb(std::move(*acc));
                return;
            }
            acc->insert(acc->end(), data.begin(), data.end());
            (*step)();
        });
    };
    (*step)();
}

/** Read all named inputs (or stdin when none), concatenated. */
void
readInputs(const Api &api, std::vector<std::string> files,
           std::function<void(int err, std::string errfile, bfs::Buffer)>
               cb)
{
    if (files.empty()) {
        slurpStdin(api, [cb](bfs::Buffer data) { cb(0, "", std::move(data)); });
        return;
    }
    auto acc = std::make_shared<bfs::Buffer>();
    auto list = std::make_shared<std::vector<std::string>>(std::move(files));
    auto step = std::make_shared<std::function<void(size_t)>>();
    *step = [api, acc, list, step, cb](size_t i) {
        if (i >= list->size()) {
            cb(0, "", std::move(*acc));
            return;
        }
        if ((*list)[i] == "-") {
            slurpStdin(api, [acc, step, i](bfs::Buffer data) {
                acc->insert(acc->end(), data.begin(), data.end());
                (*step)(i + 1);
            });
            return;
        }
        api->readFile((*list)[i],
                      [acc, list, step, i, cb](int err, bfs::Buffer data) {
                          if (err) {
                              cb(err, (*list)[i], {});
                              return;
                          }
                          acc->insert(acc->end(), data.begin(), data.end());
                          (*step)(i + 1);
                      });
    };
    (*step)(0);
}

std::vector<std::string>
splitLines(const bfs::Buffer &data)
{
    std::vector<std::string> lines;
    std::string cur;
    for (uint8_t b : data) {
        if (b == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(static_cast<char>(b));
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

void
writeAndExit(const Api &api, const std::string &out, int code = 0)
{
    api->stdoutWrite(out, [api, code](int) { api->exit(code); });
}

// ---------- the utilities ----------

void
utilCat(Api api)
{
    readInputs(api, operands(api),
               [api](int err, std::string f, bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory");
                       return;
                   }
                   writeAndExit(api,
                                std::string(data.begin(), data.end()));
               });
}

void
utilEcho(Api api)
{
    auto args = operands(api);
    bool newline = true;
    size_t start = 0;
    if (!args.empty() && args[0] == "-n") {
        newline = false;
        start = 1;
    }
    std::string out;
    for (size_t i = start; i < args.size(); i++) {
        if (i > start)
            out += " ";
        out += args[i];
    }
    if (newline)
        out += "\n";
    writeAndExit(api, out);
}

void
utilPwd(Api api)
{
    writeAndExit(api, api->cwd + "\n");
}

void
utilEnv(Api api)
{
    std::string out;
    for (const auto &[k, v] : api->env)
        out += k + "=" + v + "\n";
    writeAndExit(api, out);
}

void
utilTrue(Api api)
{
    api->exit(0);
}

void
utilFalse(Api api)
{
    api->exit(1);
}

void
utilSeq(Api api)
{
    auto args = operands(api);
    long lo = 1, hi = 0;
    if (args.size() == 1)
        hi = std::atol(args[0].c_str());
    else if (args.size() >= 2) {
        lo = std::atol(args[0].c_str());
        hi = std::atol(args[1].c_str());
    }
    std::string out;
    for (long i = lo; i <= hi; i++)
        out += std::to_string(i) + "\n";
    writeAndExit(api, out);
}

void
utilCp(Api api)
{
    auto args = operands(api);
    if (args.size() != 2) {
        fail(api, "usage: cp SRC DST");
        return;
    }
    api->readFile(args[0], [api, args](int err, bfs::Buffer data) {
        if (err) {
            fail(api, args[0] + ": No such file or directory");
            return;
        }
        api->writeFile(args[1], std::move(data), [api, args](int werr) {
            if (werr)
                fail(api, args[1] + ": write failed");
            else
                api->exit(0);
        });
    });
}

void
utilRm(Api api)
{
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "missing operand");
        return;
    }
    auto step = std::make_shared<std::function<void(size_t)>>();
    auto list = std::make_shared<std::vector<std::string>>(std::move(args));
    bool force = !list->empty() && (*list)[0] == "-f";
    size_t start = force ? 1 : 0;
    *step = [api, list, step, force](size_t i) {
        if (i >= list->size()) {
            api->exit(0);
            return;
        }
        api->unlink((*list)[i], [api, list, step, i, force](int err) {
            if (err && !force) {
                fail(api, (*list)[i] +
                              ": cannot remove: No such file or directory");
                return;
            }
            (*step)(i + 1);
        });
    };
    (*step)(start);
}

void
utilMkdir(Api api)
{
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "missing operand");
        return;
    }
    auto list = std::make_shared<std::vector<std::string>>(std::move(args));
    auto step = std::make_shared<std::function<void(size_t)>>();
    *step = [api, list, step](size_t i) {
        if (i >= list->size()) {
            api->exit(0);
            return;
        }
        api->mkdir((*list)[i], [api, list, step, i](int err) {
            if (err) {
                fail(api, "cannot create directory '" + (*list)[i] + "'");
                return;
            }
            (*step)(i + 1);
        });
    };
    (*step)(0);
}

void
utilRmdir(Api api)
{
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "missing operand");
        return;
    }
    auto list = std::make_shared<std::vector<std::string>>(std::move(args));
    auto step = std::make_shared<std::function<void(size_t)>>();
    *step = [api, list, step](size_t i) {
        if (i >= list->size()) {
            api->exit(0);
            return;
        }
        api->rmdir((*list)[i], [api, list, step, i](int err) {
            if (err) {
                fail(api, "failed to remove '" + (*list)[i] + "'");
                return;
            }
            (*step)(i + 1);
        });
    };
    (*step)(0);
}

void
utilTouch(Api api)
{
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "missing operand");
        return;
    }
    auto list = std::make_shared<std::vector<std::string>>(std::move(args));
    auto step = std::make_shared<std::function<void(size_t)>>();
    *step = [api, list, step](size_t i) {
        if (i >= list->size()) {
            api->exit(0);
            return;
        }
        const std::string &path = (*list)[i];
        api->stat(path, [api, list, step, i, path](int err, sys::StatX) {
            if (err) {
                api->writeFile(path, {}, [api, list, step, i](int werr) {
                    if (werr) {
                        fail(api, "cannot touch '" + (*list)[i] + "'");
                        return;
                    }
                    (*step)(i + 1);
                });
                return;
            }
            int64_t now = api->nowMs() * 1000;
            api->utimes(path, now, now,
                        [step, i](int) { (*step)(i + 1); });
        });
    };
    (*step)(0);
}

void
utilWc(Api api)
{
    auto args = operands(api);
    readInputs(api, args,
               [api, args](int err, std::string f, bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory");
                       return;
                   }
                   size_t lines = 0, words = 0, bytes = data.size();
                   bool in_word = false;
                   for (uint8_t b : data) {
                       if (b == '\n')
                           lines++;
                       bool space = b == ' ' || b == '\n' || b == '\t' ||
                                    b == '\r';
                       if (!space && !in_word) {
                           words++;
                           in_word = true;
                       } else if (space) {
                           in_word = false;
                       }
                   }
                   std::ostringstream os;
                   os << lines << " " << words << " " << bytes;
                   if (!args.empty() && args[0] != "-")
                       os << " " << args[0];
                   os << "\n";
                   writeAndExit(api, os.str());
               });
}

void
utilHeadTail(Api api, bool head)
{
    auto args = operands(api);
    long n = 10;
    std::vector<std::string> files;
    for (size_t i = 0; i < args.size(); i++) {
        if (args[i] == "-n" && i + 1 < args.size()) {
            n = std::atol(args[++i].c_str());
        } else {
            files.push_back(args[i]);
        }
    }
    readInputs(api, files,
               [api, n, head](int err, std::string f, bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory");
                       return;
                   }
                   auto lines = splitLines(data);
                   std::string out;
                   if (head) {
                       for (size_t i = 0;
                            i < lines.size() && i < static_cast<size_t>(n);
                            i++)
                           out += lines[i] + "\n";
                   } else {
                       size_t start = lines.size() > static_cast<size_t>(n)
                                          ? lines.size() - n
                                          : 0;
                       for (size_t i = start; i < lines.size(); i++)
                           out += lines[i] + "\n";
                   }
                   writeAndExit(api, out);
               });
}

void
utilSort(Api api)
{
    auto args = operands(api);
    bool reverse = false;
    bool numeric = false;
    std::vector<std::string> files;
    for (const auto &a : args) {
        if (a == "-r")
            reverse = true;
        else if (a == "-n")
            numeric = true;
        else
            files.push_back(a);
    }
    readInputs(api, files,
               [api, reverse, numeric](int err, std::string f,
                                       bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory");
                       return;
                   }
                   auto lines = splitLines(data);
                   if (numeric) {
                       std::stable_sort(
                           lines.begin(), lines.end(),
                           [](const std::string &a, const std::string &b) {
                               return std::atof(a.c_str()) <
                                      std::atof(b.c_str());
                           });
                   } else {
                       std::stable_sort(lines.begin(), lines.end());
                   }
                   if (reverse)
                       std::reverse(lines.begin(), lines.end());
                   std::string out;
                   for (const auto &l : lines)
                       out += l + "\n";
                   writeAndExit(api, out);
               });
}

void
utilGrep(Api api)
{
    auto args = operands(api);
    bool invert = false;
    std::vector<std::string> rest;
    for (const auto &a : args) {
        if (a == "-v")
            invert = true;
        else
            rest.push_back(a);
    }
    if (rest.empty()) {
        fail(api, "usage: grep [-v] PATTERN [FILE...]", 2);
        return;
    }
    std::string pattern = rest[0];
    rest.erase(rest.begin());

    auto matcher = std::make_shared<std::function<bool(const std::string &)>>();
    try {
        auto re = std::make_shared<std::regex>(pattern);
        *matcher = [re](const std::string &line) {
            return std::regex_search(line, *re);
        };
    } catch (std::regex_error &) {
        *matcher = [pattern](const std::string &line) {
            return line.find(pattern) != std::string::npos;
        };
    }

    readInputs(api, rest,
               [api, matcher, invert](int err, std::string f,
                                      bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory", 2);
                       return;
                   }
                   std::string out;
                   size_t hits = 0;
                   for (const auto &line : splitLines(data)) {
                       bool m = (*matcher)(line);
                       if (m != invert) {
                           out += line + "\n";
                           hits++;
                       }
                   }
                   int code = hits > 0 ? 0 : 1;
                   api->stdoutWrite(out,
                                    [api, code](int) { api->exit(code); });
               });
}

void
utilTee(Api api)
{
    auto files = operands(api);
    slurpStdin(api, [api, files](bfs::Buffer data) {
        auto step = std::make_shared<std::function<void(size_t)>>();
        auto list = std::make_shared<std::vector<std::string>>(files);
        auto payload = std::make_shared<bfs::Buffer>(std::move(data));
        *step = [api, list, step, payload](size_t i) {
            if (i >= list->size()) {
                writeAndExit(api, std::string(payload->begin(),
                                              payload->end()));
                return;
            }
            api->writeFile((*list)[i], *payload,
                           [step, i](int) { (*step)(i + 1); });
        };
        (*step)(0);
    });
}

void
utilLs(Api api)
{
    auto args = operands(api);
    bool longfmt = false;
    std::vector<std::string> paths;
    for (const auto &a : args) {
        if (a == "-l")
            longfmt = true;
        else
            paths.push_back(a);
    }
    if (paths.empty())
        paths.push_back(api->cwd);
    std::string path = paths[0];

    api->readdir(path, [api, path, longfmt](int err,
                                            std::vector<std::string> names) {
        if (err) {
            // operand may be a plain file
            api->stat(path, [api, path](int serr, sys::StatX) {
                if (serr) {
                    fail(api, "cannot access '" + path + "'", 2);
                    return;
                }
                writeAndExit(api, path + "\n");
            });
            return;
        }
        std::sort(names.begin(), names.end());
        if (!longfmt) {
            std::string out;
            for (const auto &n : names)
                out += n + "\n";
            writeAndExit(api, out);
            return;
        }
        // ls -l: one lstat per entry (the syscall pattern Figure 9's ls
        // row exercises).
        auto list = std::make_shared<std::vector<std::string>>(
            std::move(names));
        auto out = std::make_shared<std::string>();
        auto step = std::make_shared<std::function<void(size_t)>>();
        *step = [api, path, list, out, step](size_t i) {
            if (i >= list->size()) {
                writeAndExit(api, *out);
                return;
            }
            std::string full = bfs::joinPath(path, (*list)[i]);
            api->lstat(full, [api, list, out, step, i](int serr,
                                                       sys::StatX st) {
                std::ostringstream os;
                if (serr) {
                    os << "?????????? " << (*list)[i] << "\n";
                } else {
                    os << (st.isDir() ? 'd' : st.isSymlink() ? 'l' : '-')
                       << "rw-r--r-- " << st.nlink << " " << st.size
                       << " " << (*list)[i] << "\n";
                }
                *out += os.str();
                (*step)(i + 1);
            });
        };
        (*step)(0);
    });
}

void
utilStat(Api api)
{
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "missing operand");
        return;
    }
    api->stat(args[0], [api, args](int err, sys::StatX st) {
        if (err) {
            fail(api, "cannot stat '" + args[0] + "'");
            return;
        }
        std::ostringstream os;
        os << "  File: " << args[0] << "\n"
           << "  Size: " << st.size << "\n"
           << " Inode: " << st.ino << "  Links: " << st.nlink << "\n"
           << "  Type: "
           << (st.isDir() ? "directory"
                          : st.isSymlink() ? "symbolic link"
                                           : "regular file")
           << "\n"
           << "Modify: " << st.mtimeUs / 1000000 << "\n";
        writeAndExit(api, os.str());
    });
}

void
utilSha1sum(Api api)
{
    auto args = operands(api);
    readInputs(api, args,
               [api, args](int err, std::string f, bfs::Buffer data) {
                   if (err) {
                       fail(api, f + ": No such file or directory");
                       return;
                   }
                   // browser-node runs SHA-1 as JavaScript: doubles with
                   // masking — the honest JS tax of Figure 9.
                   Sha1Digest d = sha1Js(data);
                   std::string name = args.empty() ? "-" : args[0];
                   writeAndExit(api, sha1Hex(d) + "  " + name + "\n");
               });
}

void
utilXargs(Api api)
{
    auto args = operands(api);
    if (args.empty())
        args.push_back("echo");
    slurpStdin(api, [api, args](bfs::Buffer data) {
        std::vector<std::string> words;
        std::string cur;
        for (uint8_t b : data) {
            if (b == ' ' || b == '\n' || b == '\t') {
                if (!cur.empty()) {
                    words.push_back(cur);
                    cur.clear();
                }
            } else {
                cur.push_back(static_cast<char>(b));
            }
        }
        if (!cur.empty())
            words.push_back(cur);

        std::vector<std::string> cmd;
        // Resolve through the shell's PATH convention: /usr/bin.
        std::string prog = args[0];
        if (prog.find('/') == std::string::npos)
            prog = "/usr/bin/" + prog;
        cmd.push_back(prog);
        cmd.insert(cmd.end(), args.begin() + 1, args.end());
        cmd.insert(cmd.end(), words.begin(), words.end());

        api->spawn(cmd, [api](int64_t pid) {
            if (pid < 0) {
                fail(api, "cannot spawn command", 126);
                return;
            }
            api->waitPid(static_cast<int>(pid), [api](int, int status) {
                api->exit(sys::wexitstatus(status));
            });
        });
    });
}

void
utilCurl(Api api)
{
    // curl http://localhost:PORT/path — the in-Browsix HTTP client.
    auto args = operands(api);
    if (args.empty()) {
        fail(api, "usage: curl http://localhost:PORT/path", 2);
        return;
    }
    std::string url = args.back();
    int port = 80;
    std::string path = "/";
    std::string rest = url;
    auto scheme = rest.find("://");
    if (scheme != std::string::npos)
        rest = rest.substr(scheme + 3);
    auto slash = rest.find('/');
    std::string host = slash == std::string::npos ? rest
                                                  : rest.substr(0, slash);
    if (slash != std::string::npos)
        path = rest.substr(slash);
    auto colon = host.find(':');
    if (colon != std::string::npos)
        port = std::atoi(host.c_str() + colon + 1);

    api->connect(port, [api, path, host](int64_t fd) {
        if (fd < 0) {
            fail(api, "connection refused", 7);
            return;
        }
        net::HttpRequest req;
        req.method = "GET";
        req.target = path;
        req.headers["host"] = host;
        auto bytes = net::serializeRequest(req);
        api->write(static_cast<int>(fd),
                   bfs::Buffer(bytes.begin(), bytes.end()),
                   [api, fd](int64_t) {
            auto parser = std::make_shared<net::HttpParser>(
                net::HttpParser::Mode::Response);
            auto step = std::make_shared<std::function<void()>>();
            *step = [api, fd, parser, step]() {
                api->read(static_cast<int>(fd), 64 * 1024,
                          [api, fd, parser, step](int err,
                                                  bfs::Buffer data) {
                    if (err || data.empty() || !parser->feed(data) ||
                        parser->done()) {
                        api->close(static_cast<int>(fd), nullptr);
                        if (!parser->done()) {
                            fail(api, "malformed response", 1);
                            return;
                        }
                        const auto &resp = parser->response();
                        writeAndExit(api,
                                     std::string(resp.body.begin(),
                                                 resp.body.end()),
                                     resp.status >= 400 ? 22 : 0);
                        return;
                    }
                    (*step)();
                });
            };
            (*step)();
        });
    });
}

} // namespace

void
registerCoreutils()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    using rt::registerNodeUtil;
    registerNodeUtil("cat", utilCat);
    registerNodeUtil("cp", utilCp);
    registerNodeUtil("curl", utilCurl);
    registerNodeUtil("echo", utilEcho);
    registerNodeUtil("env", utilEnv);
    registerNodeUtil("false", utilFalse);
    registerNodeUtil("grep", utilGrep);
    registerNodeUtil("head",
                     [](Api api) { utilHeadTail(std::move(api), true); });
    registerNodeUtil("ls", utilLs);
    registerNodeUtil("mkdir", utilMkdir);
    registerNodeUtil("pwd", utilPwd);
    registerNodeUtil("rm", utilRm);
    registerNodeUtil("rmdir", utilRmdir);
    registerNodeUtil("seq", utilSeq);
    registerNodeUtil("sha1sum", utilSha1sum);
    registerNodeUtil("sort", utilSort);
    registerNodeUtil("stat", utilStat);
    registerNodeUtil("tail",
                     [](Api api) { utilHeadTail(std::move(api), false); });
    registerNodeUtil("tee", utilTee);
    registerNodeUtil("touch", utilTouch);
    registerNodeUtil("true", utilTrue);
    registerNodeUtil("wc", utilWc);
    registerNodeUtil("xargs", utilXargs);
}

std::string
nativeSha1sum(bfs::Vfs &vfs, const std::string &path)
{
    bfs::Buffer data;
    if (vfs.readFileSync(path, data) != 0)
        return "";
    return sha1Hex(sha1Native(data)) + "  " + path + "\n";
}

std::string
nativeLs(bfs::Vfs &vfs, const std::string &path, bool longfmt)
{
    std::string out;
    bool done = false;
    vfs.readdir(path, [&](int err, std::vector<bfs::DirEntry> es) {
        done = true;
        if (err)
            return;
        std::sort(es.begin(), es.end(),
                  [](const bfs::DirEntry &a, const bfs::DirEntry &b) {
                      return a.name < b.name;
                  });
        for (const auto &e : es) {
            if (longfmt) {
                bfs::Stat st;
                vfs.statSync(bfs::joinPath(path, e.name), st);
                out += (st.isDir() ? "d" : "-") + std::string("rw-r--r-- ") +
                       std::to_string(st.nlink) + " " +
                       std::to_string(st.size) + " " + e.name + "\n";
            } else {
                out += e.name + "\n";
            }
        }
    });
    (void)done;
    return out;
}

std::string
nativeCat(bfs::Vfs &vfs, const std::string &path)
{
    bfs::Buffer data;
    if (vfs.readFileSync(path, data) != 0)
        return "";
    return std::string(data.begin(), data.end());
}

std::string
nativeWc(bfs::Vfs &vfs, const std::string &path)
{
    bfs::Buffer data;
    if (vfs.readFileSync(path, data) != 0)
        return "";
    size_t lines = 0, words = 0;
    bool in_word = false;
    for (uint8_t b : data) {
        if (b == '\n')
            lines++;
        bool space = b == ' ' || b == '\n' || b == '\t' || b == '\r';
        if (!space && !in_word) {
            words++;
            in_word = true;
        } else if (space) {
            in_word = false;
        }
    }
    return std::to_string(lines) + " " + std::to_string(words) + " " +
           std::to_string(data.size()) + " " + path + "\n";
}

} // namespace apps
} // namespace browsix
