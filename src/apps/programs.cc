/**
 * @file
 * Registers every built-in "compiled" program with the registry, with
 * bundle sizes matching what the paper's toolchains emit (browser-node is
 * several MB; Emscripten/Emterpreter output is larger than asm.js).
 */
#include "apps/registry.h"

#include "apps/coreutils/coreutils.h"
#include "apps/httpd/httpd.h"
#include "apps/make/make.h"
#include "apps/meme/server.h"
#include "apps/shell/shell.h"
#include "apps/tex/tex.h"

namespace browsix {
namespace apps {

void
registerAllPrograms()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    auto &reg = ProgramRegistry::instance();

    // dash: compiled with the Emterpreter (asynchronous syscalls work in
    // every browser; the terminal must run everywhere).
    reg.add(ProgramSpec{"dash", RuntimeKind::EmAsync, 1200, dashMain,
                        nullptr});

    // make needs fork (§2.2) and therefore the Emterpreter.
    reg.add(ProgramSpec{"make", RuntimeKind::EmAsync, 820, makeMain,
                        nullptr});

    // els: the stat-heavy ls hot path compiled for the batched ring
    // convention — per-entry lstats go through statBatch (one doorbell
    // per directory chunk instead of one round-trip per entry).
    reg.add(ProgramSpec{"els", RuntimeKind::EmRing, 96, elsMain, nullptr});

    // ecat: the data-plane hot path compiled for the ring convention —
    // zero-copy pread windows in, one gather writev out per round.
    reg.add(ProgramSpec{"ecat", RuntimeKind::EmRing, 72, ecatMain,
                        nullptr});

    // pdflatex/bibtex exist in both compile modes; the filesystem stages
    // whichever variant the experiment wants (§3.2's sync-vs-async).
    reg.add(ProgramSpec{"pdflatex-sync", RuntimeKind::EmSync, 4200,
                        pdflatexMain, nullptr});
    reg.add(ProgramSpec{"pdflatex-emterp", RuntimeKind::EmAsync, 5200,
                        pdflatexMain, nullptr});
    reg.add(ProgramSpec{"bibtex-sync", RuntimeKind::EmSync, 900,
                        bibtexMain, nullptr});
    reg.add(ProgramSpec{"bibtex-emterp", RuntimeKind::EmAsync, 1150,
                        bibtexMain, nullptr});

    // browser-node: Node's high-level APIs + pure-JS bindings, one big
    // bundle (its parse time dominates Figure 9 utility startup).
    reg.add(ProgramSpec{"node", RuntimeKind::Node, 8192, nullptr,
                        nullptr});

    // The GopherJS-compiled meme server (§5.1.1).
    reg.add(ProgramSpec{"meme-server", RuntimeKind::Gopher, 3100, nullptr,
                        memeServerMain});

    // meme-httpd: the same meme service compiled for the ring convention
    // and served off one epoll loop (net::HttpServer::run) — the
    // connection-scale serving path measured by bench/http_serve.
    reg.add(ProgramSpec{"meme-httpd", RuntimeKind::EmRing, 3400,
                        memeHttpdMain, nullptr});
}

} // namespace apps
} // namespace browsix
