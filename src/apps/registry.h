/**
 * @file
 * Program registry: the catalogue of "compiled to JavaScript" executables.
 *
 * In the paper, each program (dash, make, pdflatex, the meme server…) is
 * compiled ahead of time to a JavaScript bundle staged in the filesystem;
 * the kernel spawns a worker from the bundle's bytes via a blob URL. Here
 * a bundle is a marker header naming a registered program plus padding
 * out to the real bundle's size — so worker boot pays a faithful
 * parse/JIT cost — and the worker bootstrap maps the name back to the
 * program's entry point and runtime kind.
 */
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "bfs/types.h"
#include "runtime/emscripten/em_runtime.h"
#include "runtime/gopher/go_runtime.h"

namespace browsix {
namespace apps {

enum class RuntimeKind {
    EmSync,    ///< Emscripten, asm.js + synchronous syscalls
    EmRing,    ///< Emscripten, asm.js + batched ring syscalls (io_uring)
    EmAsync,   ///< Emscripten, Emterpreter + asynchronous syscalls
    Gopher,    ///< GopherJS
    Node,      ///< browser-node (utilities resolved via the script file)
};

struct ProgramSpec
{
    std::string name;
    RuntimeKind kind = RuntimeKind::EmSync;
    size_t bundleKb = 64; ///< virtual size of the compiled JS bundle
    rt::EmProgramFn emMain;
    rt::GoProgramFn goMain;
};

class ProgramRegistry
{
  public:
    static ProgramRegistry &instance();

    void add(ProgramSpec spec);
    const ProgramSpec *find(const std::string &name) const;

    /** Executable file bytes for a registered program. */
    bfs::Buffer bundleFor(const std::string &name) const;

    /** Extract the program name from bundle bytes ("" if not a bundle). */
    static std::string programFromBundle(const bfs::Buffer &bytes);

  private:
    std::map<std::string, ProgramSpec> specs_;
};

/** Register every built-in program (idempotent). */
void registerAllPrograms();

} // namespace apps
} // namespace browsix
