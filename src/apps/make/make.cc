#include "apps/make/make.h"

#include <set>
#include <sstream>

#include "bfs/path.h"

namespace browsix {
namespace apps {

const MakeRule *
Makefile::find(const std::string &target) const
{
    for (const auto &r : rules)
        if (r.target == target)
            return &r;
    return nullptr;
}

namespace {

std::string
expandVars(const std::string &text, const Makefile &mf,
           const MakeRule *rule)
{
    std::string out;
    size_t i = 0;
    while (i < text.size()) {
        if (text[i] == '$' && i + 1 < text.size()) {
            char n = text[i + 1];
            if (n == '(') {
                auto close = text.find(')', i + 2);
                if (close != std::string::npos) {
                    std::string name = text.substr(i + 2, close - i - 2);
                    auto it = mf.vars.find(name);
                    out += it == mf.vars.end() ? "" : it->second;
                    i = close + 1;
                    continue;
                }
            }
            if (n == '@' && rule) {
                out += rule->target;
                i += 2;
                continue;
            }
            if (n == '<' && rule) {
                out += rule->deps.empty() ? "" : rule->deps[0];
                i += 2;
                continue;
            }
            if (n == '^' && rule) {
                for (size_t d = 0; d < rule->deps.size(); d++) {
                    if (d)
                        out += " ";
                    out += rule->deps[d];
                }
                i += 2;
                continue;
            }
            if (n == '$') {
                out += '$';
                i += 2;
                continue;
            }
        }
        out += text[i++];
    }
    return out;
}

std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> words;
    std::istringstream is(s);
    std::string w;
    while (is >> w)
        words.push_back(w);
    return words;
}

std::string
trimRight(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\r' || s.back() == ' ' || s.back() == '\t'))
        s.pop_back();
    return s;
}

} // namespace

bool
parseMakefile(const std::string &src, Makefile &out, std::string &err)
{
    out = Makefile{};
    std::istringstream is(src);
    std::string line;
    MakeRule *cur = nullptr;
    int lineno = 0;
    while (std::getline(is, line)) {
        lineno++;
        line = trimRight(line);
        if (line.empty())
            continue;
        if (line[0] == '#')
            continue;
        if (line[0] == '\t') {
            if (!cur) {
                err = "line " + std::to_string(lineno) +
                      ": command outside a rule";
                return false;
            }
            cur->commands.push_back(line.substr(1));
            continue;
        }
        auto eq = line.find('=');
        auto colon = line.find(':');
        if (eq != std::string::npos &&
            (colon == std::string::npos || eq < colon)) {
            std::string name = trimRight(line.substr(0, eq));
            std::string value = line.substr(eq + 1);
            while (!value.empty() && (value[0] == ' ' || value[0] == '\t'))
                value.erase(value.begin());
            // remove trailing spaces already handled
            while (!name.empty() && name.back() == ' ')
                name.pop_back();
            out.vars[name] = value;
            cur = nullptr;
            continue;
        }
        if (colon != std::string::npos) {
            MakeRule rule;
            rule.target = trimRight(line.substr(0, colon));
            for (const auto &d :
                 splitWords(expandVars(line.substr(colon + 1), out,
                                       nullptr)))
                rule.deps.push_back(d);
            rule.target = expandVars(rule.target, out, nullptr);
            if (rule.target.find(' ') != std::string::npos) {
                err = "line " + std::to_string(lineno) +
                      ": multiple targets unsupported";
                return false;
            }
            out.rules.push_back(std::move(rule));
            cur = &out.rules.back();
            if (out.defaultTarget.empty() &&
                out.rules.back().target[0] != '.')
                out.defaultTarget = out.rules.back().target;
            continue;
        }
        err = "line " + std::to_string(lineno) + ": cannot parse: " + line;
        return false;
    }
    return true;
}

namespace {

class MakeRun
{
  public:
    MakeRun(rt::EmEnv &env, const Makefile &mf) : env_(env), mf_(mf) {}

    int
    build(const std::string &target)
    {
        if (building_.count(target)) {
            env_.write(2, "make: circular dependency on " + target + "\n");
            return 2;
        }
        const MakeRule *rule = mf_.find(target);
        sys::StatX st;
        bool exists = env_.stat(target, st) == 0;
        if (!rule) {
            if (exists)
                return 0;
            env_.write(2, "make: *** No rule to make target '" + target +
                               "'.  Stop.\n");
            return 2;
        }
        building_.insert(target);
        for (const auto &dep : rule->deps) {
            int rc = build(dep);
            if (rc != 0) {
                building_.erase(target);
                return rc;
            }
        }
        building_.erase(target);

        // Dependency freshness scan: one batched stat sweep over every
        // prerequisite (a single ring doorbell covers the whole rule in
        // Ring mode) instead of one syscall round-trip per dep.
        int64_t newest_dep = 0;
        for (const auto &r : env_.statBatch(rule->deps)) {
            if (r.err == 0)
                newest_dep = std::max(newest_dep, r.st.mtimeUs);
        }

        if (exists && newest_dep <= st.mtimeUs) {
            if (!ranAnything_ && target == mf_.defaultTarget)
                upToDate_ = true;
            return 0;
        }

        for (const auto &raw_cmd : rule->commands) {
            std::string cmd = expandVars(raw_cmd, mf_, rule);
            bool silent = !cmd.empty() && cmd[0] == '@';
            if (silent)
                cmd.erase(cmd.begin());
            if (!silent)
                env_.write(1, cmd + "\n");
            int rc = runCommand(cmd);
            ranAnything_ = true;
            if (rc != 0) {
                env_.write(2, "make: *** [" + rule->target + "] Error " +
                                  std::to_string(rc) + "\n");
                return 2;
            }
        }
        return 0;
    }

    bool upToDate() const { return upToDate_; }

  private:
    int
    runCommand(const std::string &cmd)
    {
        // The paper's make is the program that needs fork (§2.2): fork a
        // child (resume-state shipped via the kernel), exec sh -c in it,
        // and wait4 the result.
        int pid = env_.fork("exec-sh:" + cmd);
        if (pid == -ENOSYS) {
            env_.write(2, "make: fork failed: compiled without the "
                          "Emterpreter?\n");
            return 127;
        }
        if (pid < 0)
            return 127;
        int status = 0;
        int rc = env_.waitpid(pid, &status, 0);
        if (rc < 0)
            return 127;
        return sys::wifExited(status) ? sys::wexitstatus(status)
                                      : 128 + sys::wtermsig(status);
    }

    rt::EmEnv &env_;
    const Makefile &mf_;
    std::set<std::string> building_;
    bool ranAnything_ = false;
    bool upToDate_ = false;
};

} // namespace

int
makeMain(rt::EmEnv &env)
{
    // fork children resume here: the resume state names the command.
    const std::string &resume = env.resumeState();
    if (resume.rfind("exec-sh:", 0) == 0) {
        std::string cmd = resume.substr(8);
        env.execv({"/bin/sh", "-c", cmd});
        return 127; // exec failed
    }

    std::string makefile = "Makefile";
    std::vector<std::string> goals;
    const auto &argv = env.argv();
    for (size_t i = 1; i < argv.size(); i++) {
        if (argv[i] == "-f" && i + 1 < argv.size())
            makefile = argv[++i];
        else
            goals.push_back(argv[i]);
    }

    int fd = env.open(makefile, 0);
    if (fd < 0) {
        env.write(2, "make: " + makefile + ": No such file or directory\n");
        return 2;
    }
    std::string src;
    for (;;) {
        bfs::Buffer chunk;
        int64_t n = env.read(fd, chunk, 64 * 1024);
        if (n <= 0)
            break;
        src.append(chunk.begin(), chunk.end());
    }
    env.close(fd);

    Makefile mf;
    std::string err;
    if (!parseMakefile(src, mf, err)) {
        env.write(2, "make: " + err + "\n");
        return 2;
    }
    if (goals.empty()) {
        if (mf.defaultTarget.empty()) {
            env.write(2, "make: *** No targets.  Stop.\n");
            return 2;
        }
        goals.push_back(mf.defaultTarget);
    }
    for (const auto &goal : goals) {
        MakeRun run(env, mf);
        int rc = run.build(goal);
        if (rc != 0)
            return rc;
        if (run.upToDate())
            env.write(1, "make: '" + goal + "' is up to date.\n");
    }
    return 0;
}

} // namespace apps
} // namespace browsix
