/**
 * @file
 * GNU-Make-equivalent builder (§2): reads a Makefile from the Browsix
 * filesystem, stats dependencies, and rebuilds stale targets by running
 * their commands through /bin/sh.
 *
 * make is the one program in the paper's LaTeX pipeline that uses fork
 * (§2.2), so it is "compiled" in Emterpreter mode: each command runs via
 * fork (resume-state snapshot through the kernel) + exec of sh -c, then
 * wait4 — the full §3.3 process-management surface.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/emscripten/em_runtime.h"

namespace browsix {
namespace apps {

struct MakeRule
{
    std::string target;
    std::vector<std::string> deps;
    std::vector<std::string> commands;
};

struct Makefile
{
    std::map<std::string, std::string> vars;
    std::vector<MakeRule> rules;
    std::string defaultTarget;

    const MakeRule *find(const std::string &target) const;
};

/** Parse Makefile text (vars, rules, $(VAR)/$@/$< expansion). Pure. */
bool parseMakefile(const std::string &src, Makefile &out, std::string &err);

/** Program entry registered as "make". */
int makeMain(rt::EmEnv &env);

} // namespace apps
} // namespace browsix
