#include "apps/tex/tex.h"

#include <set>
#include <sstream>

#include "bfs/path.h"
#include "jsvm/util.h"
#include "runtime/emvm/assembler.h"

namespace browsix {
namespace apps {

// ---------------------------------------------------------------------------
// Typeset kernel: native and bytecode versions of the same mixing loop.

int64_t
typesetNative(int64_t seed, int64_t iters)
{
    // Must match the bytecode kernel bit-for-bit; the VM's SHR is a
    // logical shift and its arithmetic wraps, so compute in uint64_t
    // (signed overflow would be UB here) and cast back.
    uint64_t x = static_cast<uint64_t>(seed | 1);
    for (int64_t i = 0; i < iters; i++) {
        x = x * 31 + static_cast<uint64_t>(seed);
        x = x ^ (x >> 7);
        x = x + static_cast<uint64_t>(i);
    }
    return static_cast<int64_t>(x);
}

const emvm::Image &
typesetImage()
{
    static const emvm::Image image = []() {
        // typeset(seed, iters): locals 0=seed 1=iters 2=x 3=i
        const char *src = R"(
.func typeset 2 4
    loadl 0
    push 1
    or
    storel 2          ; x = seed | 1
    push 0
    storel 3          ; i = 0
loop:
    loadl 3
    loadl 1
    lt
    jz done           ; while (i < iters)
    loadl 2
    push 31
    mul
    loadl 0
    add
    storel 2          ; x = x*31 + seed
    loadl 2
    loadl 2
    push 7
    shr
    xor
    storel 2          ; x ^= x >> 7
    loadl 2
    loadl 3
    add
    storel 2          ; x += i
    loadl 3
    push 1
    add
    storel 3
    jmp loop
done:
    loadl 2
    ret
.end
.func main 0 1
    push 0
    halt
.end
)";
        emvm::Image img;
        std::string err;
        if (!emvm::assemble(src, img, err))
            jsvm::panic("typeset kernel assembly failed: " + err);
        return img;
    }();
    return image;
}

// ---------------------------------------------------------------------------
// pdflatex

namespace {

/** fnv-ish hash for seeding typeset work from content. */
int64_t
contentSeed(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return static_cast<int64_t>(h & 0x7fffffffffffull);
}

std::string
hex64(int64_t v)
{
    std::ostringstream os;
    os << std::hex << static_cast<uint64_t>(v);
    return os.str();
}

struct TexDoc
{
    std::string cls = "article";
    std::vector<std::string> packages;
    std::vector<std::string> inputs;
    std::vector<std::string> citations;
    std::string bibdata;
    std::vector<std::string> bodyLines;
};

void
parseTexSource(const std::string &src, TexDoc &doc)
{
    std::istringstream is(src);
    std::string line;
    auto arg = [](const std::string &l, const std::string &cmd,
                  std::string &out) {
        auto pos = l.find(cmd);
        if (pos == std::string::npos)
            return false;
        auto open = l.find('{', pos);
        auto close = l.find('}', open);
        if (open == std::string::npos || close == std::string::npos)
            return false;
        out = l.substr(open + 1, close - open - 1);
        return true;
    };
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] == '%')
            continue;
        std::string a;
        if (arg(line, "\\documentclass", a)) {
            doc.cls = a;
            continue;
        }
        if (arg(line, "\\usepackage", a)) {
            // comma-separated lists allowed
            std::string cur;
            for (char c : a + ",") {
                if (c == ',') {
                    if (!cur.empty())
                        doc.packages.push_back(cur);
                    cur.clear();
                } else if (c != ' ') {
                    cur.push_back(c);
                }
            }
            continue;
        }
        if (arg(line, "\\input", a)) {
            doc.inputs.push_back(a);
            continue;
        }
        if (arg(line, "\\bibliography", a)) {
            doc.bibdata = a;
            continue;
        }
        // \cite may appear mid-line, repeatedly
        size_t pos = 0;
        while ((pos = line.find("\\cite{", pos)) != std::string::npos) {
            auto close = line.find('}', pos);
            if (close == std::string::npos)
                break;
            doc.citations.push_back(line.substr(pos + 6, close - pos - 6));
            pos = close + 1;
        }
        doc.bodyLines.push_back(line);
    }
}

/** The canonical font set every document pulls in. */
const std::vector<std::string> &
baseFonts()
{
    static const std::vector<std::string> fonts = {
        "fonts/cmr10.tfm",  "fonts/cmr7.tfm",  "fonts/cmbx10.tfm",
        "fonts/cmti10.tfm", "fonts/cmmi10.tfm", "fonts/cmsy10.tfm",
        "fonts/cmex10.tfm", "fonts/cmtt10.tfm", "fonts/cmr10.pfb",
        "fonts/cmbx10.pfb", "fonts/cmti10.pfb", "fonts/cmmi10.pfb"};
    return fonts;
}

/** Load a texlive file, following its "%require: X" transitive deps. */
int
loadTexliveFile(TexIo &io, const std::string &relpath,
                std::set<std::string> &loaded, std::string &err_file,
                int64_t &bytes_read)
{
    if (loaded.count(relpath))
        return 0;
    loaded.insert(relpath);
    // kpathsea-style search: probe the usual tree locations first.
    // Failed path lookups are "a common event" (§3.6) — this is where
    // that syscall traffic comes from.
    for (const char *prefix :
         {"/texlive/texmf-local/", "/texlive/texmf-dist/tex/",
          "/texlive/texmf-var/"}) {
        if (io.exists(prefix + relpath))
            break;
    }
    std::string content;
    int rc = io.readFile("/texlive/" + relpath, content);
    if (rc != 0) {
        err_file = relpath;
        return rc;
    }
    bytes_read += static_cast<int64_t>(content.size());
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        const std::string marker = "%require: ";
        if (line.rfind(marker, 0) == 0) {
            std::string dep = line.substr(marker.size());
            while (!dep.empty() && (dep.back() == '\r' || dep.back() == ' '))
                dep.pop_back();
            rc = loadTexliveFile(io, dep, loaded, err_file, bytes_read);
            if (rc != 0)
                return rc;
        }
    }
    return 0;
}

} // namespace

int
runPdflatex(TexIo &io, const std::string &jobpath, int64_t iters_per_page)
{
    std::string jobname = jobpath;
    if (jobname.size() > 4 && jobname.substr(jobname.size() - 4) == ".tex")
        jobname = jobname.substr(0, jobname.size() - 4);

    std::ostringstream log;
    log << "This is pdfTeX (Browsix substrate)\n";

    std::string src;
    if (io.readFile(jobname + ".tex", src) != 0) {
        io.log("! I can't find file `" + jobname + ".tex'.\n");
        return 1;
    }

    TexDoc doc;
    parseTexSource(src, doc);
    for (const auto &inc : doc.inputs) {
        std::string sub;
        if (io.readFile(inc + ".tex", sub) != 0) {
            io.log("! LaTeX Error: File `" + inc + ".tex' not found.\n");
            return 1;
        }
        TexDoc subdoc;
        parseTexSource(sub, subdoc);
        doc.bodyLines.insert(doc.bodyLines.end(), subdoc.bodyLines.begin(),
                             subdoc.bodyLines.end());
        doc.citations.insert(doc.citations.end(), subdoc.citations.begin(),
                             subdoc.citations.end());
    }

    // Pull in the class, packages (with transitive deps), and fonts —
    // each one a lazy open/read against the texlive tree.
    std::set<std::string> loaded;
    int64_t bytes_read = 0;
    std::string missing;
    if (loadTexliveFile(io, doc.cls + ".cls", loaded, missing,
                        bytes_read) != 0) {
        io.log("! LaTeX Error: File `" + missing + "' not found.\n");
        return 1;
    }
    for (const auto &pkg : doc.packages) {
        if (loadTexliveFile(io, pkg + ".sty", loaded, missing,
                            bytes_read) != 0) {
            io.log("! LaTeX Error: File `" + missing + "' not found.\n");
            io.log("Emergency stop.\n");
            return 1;
        }
    }
    for (const auto &font : baseFonts()) {
        if (loadTexliveFile(io, font, loaded, missing, bytes_read) != 0) {
            io.log("! Font file " + missing + " not found.\n");
            return 1;
        }
    }
    log << "(" << loaded.size() << " files read, " << bytes_read
        << " bytes)\n";

    // Auxiliary file: citations recorded for bibtex. Left untouched when
    // the content is unchanged (like latexmk) so Makefile mtime checks
    // reach a fixpoint instead of rebuilding forever.
    std::ostringstream aux;
    aux << "\\relax\n";
    for (const auto &c : doc.citations)
        aux << "\\citation{" << c << "}\n";
    if (!doc.bibdata.empty())
        aux << "\\bibdata{" << doc.bibdata << "}\n";
    std::string prev_aux;
    bool aux_same = io.readFile(jobname + ".aux", prev_aux) == 0 &&
                    prev_aux == aux.str();
    if (!aux_same && io.writeFile(jobname + ".aux", aux.str()) != 0) {
        io.log("! I can't write on file `" + jobname + ".aux'.\n");
        return 1;
    }

    // Incorporate the bibliography if bibtex has produced it.
    std::string bbl;
    bool undefined_citations = false;
    if (!doc.citations.empty()) {
        if (io.readFile(jobname + ".bbl", bbl) != 0) {
            undefined_citations = true;
            log << "LaTeX Warning: Citation undefined; rerun bibtex.\n";
        }
    }

    // Typeset page by page: real compute through the kernel.
    size_t words = 0;
    std::string body;
    for (const auto &l : doc.bodyLines) {
        body += l;
        body += '\n';
        bool in_word = false;
        for (char c : l) {
            if (c != ' ' && c != '\t' && !in_word) {
                words++;
                in_word = true;
            } else if (c == ' ' || c == '\t') {
                in_word = false;
            }
        }
    }
    int pages = static_cast<int>(words / 350) + 1;
    std::ostringstream pdf;
    pdf << "%PDF-1.5\n% Browsix pdflatex substrate\n";
    for (int p = 0; p < pages; p++) {
        int64_t seed =
            contentSeed(body + bbl + std::to_string(p));
        int64_t h = io.typeset(seed, iters_per_page);
        pdf << "% page " << (p + 1) << " " << hex64(h) << "\n";
    }
    pdf << "%%EOF\n";
    if (io.writeFile(jobname + ".pdf", pdf.str()) != 0) {
        io.log("! I can't write on file `" + jobname + ".pdf'.\n");
        return 1;
    }
    log << "Output written on " << jobname << ".pdf (" << pages
        << " page" << (pages == 1 ? "" : "s") << ").\n";
    io.writeFile(jobname + ".log", log.str());
    io.log(log.str());
    return undefined_citations ? 0 : 0;
}

// ---------------------------------------------------------------------------
// bibtex

int
runBibtex(TexIo &io, const std::string &jobpath)
{
    std::string jobname = jobpath;
    if (jobname.size() > 4 && jobname.substr(jobname.size() - 4) == ".aux")
        jobname = jobname.substr(0, jobname.size() - 4);

    std::string aux;
    if (io.readFile(jobname + ".aux", aux) != 0) {
        io.log("I couldn't open auxiliary file " + jobname + ".aux\n");
        return 2;
    }
    std::vector<std::string> citations;
    std::string bibdata;
    std::istringstream is(aux);
    std::string line;
    auto braceArg = [](const std::string &l) {
        auto open = l.find('{');
        auto close = l.find('}', open);
        if (open == std::string::npos || close == std::string::npos)
            return std::string();
        return l.substr(open + 1, close - open - 1);
    };
    while (std::getline(is, line)) {
        if (line.rfind("\\citation{", 0) == 0)
            citations.push_back(braceArg(line));
        else if (line.rfind("\\bibdata{", 0) == 0)
            bibdata = braceArg(line);
    }
    if (bibdata.empty()) {
        io.log("I found no \\bibdata command\n");
        return 2;
    }

    std::string bib;
    if (io.readFile(bibdata + ".bib", bib) != 0) {
        io.log("I couldn't open database file " + bibdata + ".bib\n");
        return 2;
    }

    // Crude .bib parse: @type{key, field={value}, ...}
    std::map<std::string, std::map<std::string, std::string>> entries;
    size_t pos = 0;
    while ((pos = bib.find('@', pos)) != std::string::npos) {
        auto open = bib.find('{', pos);
        if (open == std::string::npos)
            break;
        auto comma = bib.find(',', open);
        if (comma == std::string::npos)
            break;
        std::string key = bib.substr(open + 1, comma - open - 1);
        while (!key.empty() && (key.back() == ' ' || key.back() == '\n'))
            key.pop_back();
        // fields until the matching close brace (depth tracked)
        size_t depth = 1;
        size_t i = comma + 1;
        std::string fields;
        while (i < bib.size() && depth > 0) {
            if (bib[i] == '{')
                depth++;
            else if (bib[i] == '}')
                depth--;
            if (depth > 0)
                fields.push_back(bib[i]);
            i++;
        }
        std::map<std::string, std::string> fieldmap;
        size_t fpos = 0;
        while (fpos < fields.size()) {
            auto eq = fields.find('=', fpos);
            if (eq == std::string::npos)
                break;
            std::string fname = fields.substr(fpos, eq - fpos);
            std::string clean;
            for (char c : fname)
                if (isalpha(c))
                    clean.push_back(static_cast<char>(tolower(c)));
            auto vopen = fields.find('{', eq);
            if (vopen == std::string::npos)
                break;
            size_t vdepth = 1;
            size_t j = vopen + 1;
            std::string value;
            while (j < fields.size() && vdepth > 0) {
                if (fields[j] == '{')
                    vdepth++;
                else if (fields[j] == '}')
                    vdepth--;
                if (vdepth > 0)
                    value.push_back(fields[j]);
                j++;
            }
            fieldmap[clean] = value;
            fpos = j;
        }
        entries[key] = std::move(fieldmap);
        pos = i;
    }

    std::ostringstream bbl;
    bbl << "\\begin{thebibliography}{" << citations.size() << "}\n";
    int errors = 0;
    std::ostringstream log;
    for (const auto &key : citations) {
        auto it = entries.find(key);
        if (it == entries.end()) {
            log << "Warning--I didn't find a database entry for \"" << key
                << "\"\n";
            errors++;
            continue;
        }
        const auto &f = it->second;
        auto field = [&](const std::string &name) {
            auto fit = f.find(name);
            return fit == f.end() ? std::string("??") : fit->second;
        };
        bbl << "\\bibitem{" << key << "}\n"
            << field("author") << ". " << field("title") << ". "
            << field("year") << ".\n";
    }
    bbl << "\\end{thebibliography}\n";
    if (io.writeFile(jobname + ".bbl", bbl.str()) != 0) {
        io.log("I couldn't write " + jobname + ".bbl\n");
        return 2;
    }
    io.writeFile(jobname + ".blg", log.str());
    io.log(log.str());
    return errors > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Browsix (EmEnv) adapters

namespace {

class EmTexIo : public TexIo
{
  public:
    explicit EmTexIo(rt::EmEnv &env) : env_(env) {}

    int
    readFile(const std::string &path, std::string &out) override
    {
        int fd = env_.open(path, 0);
        if (fd < 0)
            return -fd;
        out.clear();
        for (;;) {
            bfs::Buffer chunk;
            int64_t n = env_.read(fd, chunk, 64 * 1024);
            if (n < 0) {
                env_.close(fd);
                return static_cast<int>(-n);
            }
            if (n == 0)
                break;
            out.append(chunk.begin(), chunk.end());
        }
        env_.close(fd);
        return 0;
    }

    int
    writeFile(const std::string &path, const std::string &data) override
    {
        int fd = env_.open(path, bfs::flags::CREAT | bfs::flags::TRUNC |
                                     bfs::flags::WRONLY);
        if (fd < 0)
            return -fd;
        int64_t n = env_.write(fd, data);
        env_.close(fd);
        return n < 0 ? static_cast<int>(-n) : 0;
    }

    bool
    exists(const std::string &path) override
    {
        return env_.access(path, 0) == 0;
    }

    void
    log(const std::string &line) override
    {
        if (!line.empty())
            env_.write(1, line);
    }

    int64_t
    typeset(int64_t seed, int64_t iters) override
    {
        if (env_.emterpreted()) {
            // Genuinely interpreted: the Emterpreter tax is real time.
            return env_.runInterpreted(typesetImage(), "typeset",
                                       {seed, iters});
        }
        // asm.js: modelled by a calibrated surcharge on the native run
        // (2016-era asm.js integer loops ran ~3x native).
        int64_t t0 = jsvm::nowUs();
        int64_t r = typesetNative(seed, iters);
        int64_t elapsed = jsvm::nowUs() - t0;
        double asmjs_factor = 3.0;
        env_.costs().charge(static_cast<double>(elapsed) *
                            (asmjs_factor - 1.0));
        return r;
    }

  private:
    rt::EmEnv &env_;
};

class NativeTexIo : public TexIo
{
  public:
    NativeTexIo(bfs::Vfs &vfs, std::string *log_out)
        : vfs_(vfs), logOut_(log_out)
    {
    }

    int
    readFile(const std::string &path, std::string &out) override
    {
        bfs::Buffer data;
        int rc = vfs_.readFileSync(path, data);
        if (rc != 0)
            return rc;
        out.assign(data.begin(), data.end());
        return 0;
    }

    int
    writeFile(const std::string &path, const std::string &data) override
    {
        return vfs_.writeFileSync(path, data);
    }

    bool
    exists(const std::string &path) override
    {
        bfs::Stat st;
        return vfs_.statSync(path, st) == 0;
    }

    void
    log(const std::string &line) override
    {
        if (logOut_)
            *logOut_ += line;
    }

    int64_t
    typeset(int64_t seed, int64_t iters) override
    {
        return typesetNative(seed, iters);
    }

  private:
    bfs::Vfs &vfs_;
    std::string *logOut_;
};

} // namespace

int
pdflatexMain(rt::EmEnv &env)
{
    const auto &argv = env.argv();
    if (argv.size() < 2) {
        env.write(2, "pdflatex: missing input file\n");
        return 1;
    }
    EmTexIo io(env);
    return runPdflatex(io, argv[1], kItersPerPage);
}

int
bibtexMain(rt::EmEnv &env)
{
    const auto &argv = env.argv();
    if (argv.size() < 2) {
        env.write(2, "bibtex: missing aux file\n");
        return 1;
    }
    EmTexIo io(env);
    return runBibtex(io, argv[1]);
}

int
pdflatexNative(bfs::Vfs &vfs, const std::string &jobpath,
               std::string &log_out)
{
    NativeTexIo io(vfs, &log_out);
    return runPdflatex(io, jobpath, kItersPerPage);
}

int
bibtexNative(bfs::Vfs &vfs, const std::string &jobpath,
             std::string &log_out)
{
    NativeTexIo io(vfs, &log_out);
    return runBibtex(io, jobpath);
}

// ---------------------------------------------------------------------------
// The staged TeX Live tree + a sample project

void
populateTexliveStore(bfs::HttpStore &store, size_t n_packages)
{
    auto blob = [](size_t bytes, uint32_t seed) {
        bfs::Buffer out(bytes);
        uint32_t x = seed | 1;
        for (size_t i = 0; i < bytes; i++) {
            x = x * 1664525 + 1013904223;
            out[i] = static_cast<uint8_t>(x >> 24);
        }
        return out;
    };

    store.put("/article.cls",
              "% article.cls (Browsix TeX Live substrate)\n"
              "%require: size10.clo\n" +
                  std::string(2000, '%'));
    store.put("/size10.clo", "% size option\n" + std::string(1200, '%'));

    // Named packages mirroring common usage, with transitive deps.
    store.put("/geometry.sty",
              "% geometry\n%require: keyval.sty\n" + std::string(3000, '%'));
    store.put("/keyval.sty", "% keyval\n" + std::string(800, '%'));
    store.put("/amsmath.sty",
              "% amsmath\n%require: amstext.sty\n%require: amsbsy.sty\n" +
                  std::string(8000, '%'));
    store.put("/amstext.sty", "% amstext\n" + std::string(900, '%'));
    store.put("/amsbsy.sty", "% amsbsy\n" + std::string(700, '%'));
    store.put("/graphicx.sty",
              "% graphicx\n%require: keyval.sty\n%require: graphics.sty\n" +
                  std::string(2500, '%'));
    store.put("/graphics.sty", "% graphics\n" + std::string(2200, '%'));
    store.put("/hyperref.sty",
              "% hyperref\n%require: url.sty\n%require: keyval.sty\n" +
                  std::string(12000, '%'));
    store.put("/url.sty", "% url\n" + std::string(1500, '%'));
    store.put("/natbib.sty", "% natbib\n" + std::string(4000, '%'));

    // Filler packages: the long tail of a real distribution (the paper:
    // "a complete TeX Live distribution contains over 60,000 individual
    // files" — a typical paper touches almost none of them).
    for (size_t i = 0; i < n_packages; i++) {
        std::string name = "/pkg" + std::to_string(i) + ".sty";
        std::string content = "% filler package " + std::to_string(i) + "\n";
        if (i % 3 == 1)
            content += "%require: pkg" + std::to_string(i - 1) + ".sty\n";
        content += std::string(1000 + (i % 7) * 500, '%');
        store.put(name, content);
    }

    // Fonts: binary, a few tens of KB each.
    uint32_t seed = 7;
    for (const char *f :
         {"fonts/cmr10.tfm", "fonts/cmr7.tfm", "fonts/cmbx10.tfm",
          "fonts/cmti10.tfm", "fonts/cmmi10.tfm", "fonts/cmsy10.tfm",
          "fonts/cmex10.tfm", "fonts/cmtt10.tfm"}) {
        store.put(std::string("/") + f, blob(1400 + seed % 700, seed));
        seed += 13;
    }
    for (const char *f : {"fonts/cmr10.pfb", "fonts/cmbx10.pfb",
                          "fonts/cmti10.pfb", "fonts/cmmi10.pfb"}) {
        store.put(std::string("/") + f, blob(34000 + seed % 9000, seed));
        seed += 17;
    }
}

void
stageLatexProject(bfs::InMemBackend &root, const std::string &dir,
                  int pages)
{
    std::ostringstream tex;
    tex << "\\documentclass{article}\n"
        << "\\usepackage{geometry}\n"
        << "\\usepackage{amsmath}\n"
        << "\\usepackage{graphicx}\n"
        << "\\usepackage{hyperref}\n"
        << "\\begin{document}\n"
        << "\\title{Browsix: Bridging the Gap}\n"
        << "Browsix brings Unix abstractions to the browser "
        << "\\cite{browsix} and builds on Doppio \\cite{doppio}.\n";
    for (int p = 0; p < pages; p++) {
        for (int i = 0; i < 35; i++) {
            tex << "paragraph " << p << "." << i
                << " lorem ipsum dolor sit amet consectetur adipiscing "
                   "elit sed do eiusmod tempor\n";
        }
    }
    tex << "\\bibliography{main}\n\\end{document}\n";

    std::string bib =
        "@inproceedings{browsix,\n"
        "  author={Powers, Bobby and Vilk, John and Berger, Emery D.},\n"
        "  title={Browsix: Bridging the Gap Between Unix and the "
        "Browser},\n"
        "  year={2017}\n}\n"
        "@inproceedings{doppio,\n"
        "  author={Vilk, John and Berger, Emery D.},\n"
        "  title={Doppio: Breaking the Browser Language Barrier},\n"
        "  year={2014}\n}\n";

    std::string makefile =
        "PDFLATEX = /usr/bin/pdflatex\n"
        "BIBTEX = /usr/bin/bibtex\n"
        "\n"
        "main.pdf: main.tex main.bbl\n"
        "\t$(PDFLATEX) main.tex\n"
        "\n"
        "main.bbl: main.bib main.aux\n"
        "\t$(BIBTEX) main\n"
        "\n"
        "main.aux: main.tex\n"
        "\t$(PDFLATEX) main.tex\n";

    root.writeFile(dir + "/main.tex", tex.str());
    root.writeFile(dir + "/main.bib", bib);
    root.writeFile(dir + "/Makefile", makefile);
}

} // namespace apps
} // namespace browsix
