/**
 * @file
 * pdflatex and bibtex workload simulators, plus the staged TeX Live tree.
 *
 * Faithfulness targets (what the paper's evaluation depends on):
 *  - the same *syscall mix*: dozens of package/class/font files opened
 *    and read (lazily fetched over HTTP on first access, §2.2), auxiliary
 *    files written, a PDF produced;
 *  - the same *process structure*: make -> pdflatex / bibtex, driven by
 *    a Makefile;
 *  - the same *compute split*: a typesetting kernel that runs native
 *    ("asm.js") under synchronous syscalls and genuinely interpreted
 *    (emvm bytecode) under the Emterpreter — the source of the paper's
 *    3 s vs 12 s gap.
 *
 * TexIo abstracts the I/O so the identical logic runs as a Browsix
 * process (EmEnv) and as the native Linux baseline (direct VFS).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bfs/http_backend.h"
#include "bfs/inmem.h"
#include "bfs/vfs.h"
#include "runtime/emscripten/em_runtime.h"
#include "runtime/emvm/vm.h"

namespace browsix {
namespace apps {

/** Blocking I/O the TeX tools need, in both worlds. */
class TexIo
{
  public:
    virtual ~TexIo() = default;
    virtual int readFile(const std::string &path, std::string &out) = 0;
    virtual int writeFile(const std::string &path,
                          const std::string &data) = 0;
    virtual bool exists(const std::string &path) = 0;
    virtual void log(const std::string &line) = 0; ///< stdout
    /** The typesetting compute kernel. */
    virtual int64_t typeset(int64_t seed, int64_t iters) = 0;
};

/** Core engines (pure w.r.t. TexIo). Return process exit codes. */
int runPdflatex(TexIo &io, const std::string &jobpath,
                int64_t iters_per_page);
int runBibtex(TexIo &io, const std::string &jobpath);

/** Default typeset work per page (calibrated so a one-page native build
 * lands near the paper's ~100 ms scale). */
constexpr int64_t kItersPerPage = 8000000;

/** Native typeset kernel — must agree bit-for-bit with the bytecode. */
int64_t typesetNative(int64_t seed, int64_t iters);

/** The same kernel as emvm bytecode (built once, cached). */
const emvm::Image &typesetImage();

/** Browsix program entries (registered as pdflatex / bibtex). */
int pdflatexMain(rt::EmEnv &env);
int bibtexMain(rt::EmEnv &env);

/** Native-baseline runs (direct VFS, native kernel). */
int pdflatexNative(bfs::Vfs &vfs, const std::string &jobpath,
                   std::string &log_out);
int bibtexNative(bfs::Vfs &vfs, const std::string &jobpath,
                 std::string &log_out);

/**
 * Stage a synthetic TeX Live tree into an HTTP store: article.cls, a
 * dependency graph of packages (~n_packages), and a set of font files —
 * several MB total, of which a typical document needs only a few dozen
 * files (the paper's lazy-loading story).
 */
void populateTexliveStore(bfs::HttpStore &store, size_t n_packages = 60);

/** A small LaTeX project (main.tex, main.bib, Makefile) staged at /home. */
void stageLatexProject(bfs::InMemBackend &root, const std::string &dir,
                       int pages = 1);

} // namespace apps
} // namespace browsix
