#include "apps/shell/shell.h"

#include <algorithm>

#include "bfs/path.h"

namespace browsix {
namespace apps {

using sh::Command;
using sh::List;
using sh::Pipeline;
using sh::Redirect;
using sh::Segment;
using sh::SeqOp;
using sh::Word;

Shell::Shell(rt::EmEnv &env) : env_(env)
{
    exports_ = env.environ();
}

int
Shell::main()
{
    const auto &argv = env_.argv();
    // argv[0] is the dash bundle path.
    if (argv.size() >= 3 && argv[1] == "-c") {
        scriptArgs_ = {"sh"};
        for (size_t i = 3; i < argv.size(); i++)
            scriptArgs_.push_back(argv[i]);
        return runScript(argv[2]);
    }
    if (argv.size() >= 2 && argv[1] != "-") {
        // script file
        int fd = env_.open(argv[1], 0);
        if (fd < 0) {
            env_.write(2, "sh: cannot open " + argv[1] + "\n");
            return 127;
        }
        std::string src;
        for (;;) {
            bfs::Buffer chunk;
            int64_t n = env_.read(fd, chunk, 64 * 1024);
            if (n <= 0)
                break;
            src.append(chunk.begin(), chunk.end());
        }
        env_.close(fd);
        scriptArgs_.assign(argv.begin() + 1, argv.end());
        return runScript(src);
    }
    // read the whole script from stdin
    std::string src;
    for (;;) {
        bfs::Buffer chunk;
        int64_t n = env_.read(0, chunk, 64 * 1024);
        if (n <= 0)
            break;
        src.append(chunk.begin(), chunk.end());
    }
    scriptArgs_ = {"sh"};
    return runScript(src);
}

int
Shell::runScript(const std::string &src)
{
    List list;
    std::string err;
    if (!sh::parseScript(src, list, err)) {
        env_.write(2, "sh: syntax error: " + err + "\n");
        return 2;
    }
    return runList(list);
}

// ---------------- expansion ----------------

std::string
Shell::lookupVar(const std::string &name)
{
    if (name == "?")
        return std::to_string(lastStatus_);
    if (name == "$")
        return std::to_string(env_.getpid());
    if (name == "#")
        return std::to_string(
            scriptArgs_.empty() ? 0 : scriptArgs_.size() - 1);
    if (name == "@" || name == "*") {
        std::string out;
        for (size_t i = 1; i < scriptArgs_.size(); i++) {
            if (i > 1)
                out += " ";
            out += scriptArgs_[i];
        }
        return out;
    }
    if (name.size() == 1 && isdigit(name[0])) {
        size_t i = name[0] - '0';
        return i < scriptArgs_.size() ? scriptArgs_[i] : "";
    }
    auto it = vars_.find(name);
    if (it != vars_.end())
        return it->second;
    it = exports_.find(name);
    if (it != exports_.end())
        return it->second;
    return "";
}

std::string
Shell::commandSubst(const std::string &body)
{
    int fds[2];
    if (env_.pipe2(fds) != 0)
        return "";
    int pid = env_.spawn({resolveProgram("sh"), "-c", body}, exports_, "",
                         {0, fds[1], 2});
    env_.close(fds[1]);
    std::string out;
    if (pid > 0) {
        for (;;) {
            bfs::Buffer chunk;
            int64_t n = env_.read(fds[0], chunk, 64 * 1024);
            if (n <= 0)
                break;
            out.append(chunk.begin(), chunk.end());
        }
        int status = 0;
        env_.waitpid(pid, &status, 0);
    }
    env_.close(fds[0]);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

std::string
Shell::expandDollars(const std::string &text)
{
    std::string out;
    size_t i = 0;
    while (i < text.size()) {
        char c = text[i];
        if (c != '$') {
            out.push_back(c);
            i++;
            continue;
        }
        if (i + 1 >= text.size()) {
            out.push_back('$');
            break;
        }
        char n = text[i + 1];
        if (n == '(') {
            // find balanced close
            size_t depth = 1, j = i + 2;
            while (j < text.size() && depth > 0) {
                if (text[j] == '(')
                    depth++;
                else if (text[j] == ')')
                    depth--;
                j++;
            }
            out += commandSubst(text.substr(i + 2, j - i - 3));
            i = j;
            continue;
        }
        if (n == '{') {
            auto close = text.find('}', i + 2);
            if (close == std::string::npos) {
                out.push_back('$');
                i++;
                continue;
            }
            out += lookupVar(text.substr(i + 2, close - i - 2));
            i = close + 1;
            continue;
        }
        if (isalnum(n) || n == '_' || n == '?' || n == '$' || n == '#' ||
            n == '@' || n == '*') {
            size_t j = i + 1;
            if (isalpha(n) || n == '_') {
                while (j < text.size() &&
                       (isalnum(text[j]) || text[j] == '_'))
                    j++;
            } else {
                j = i + 2;
            }
            out += lookupVar(text.substr(i + 1, j - i - 1));
            i = j;
            continue;
        }
        out.push_back('$');
        i++;
    }
    return out;
}

std::string
Shell::expandSegment(const Segment &seg, bool &splittable)
{
    switch (seg.quote) {
      case Segment::Single:
        splittable = false;
        return seg.text;
      case Segment::Double:
        splittable = false;
        return expandDollars(seg.text);
      case Segment::None:
        splittable = true;
        return expandDollars(seg.text);
    }
    return seg.text;
}

std::vector<std::string>
Shell::globExpand(const std::string &pattern)
{
    std::string dir = bfs::dirname(pattern);
    std::string leaf = sh::globMatch("*", "") ? bfs::basename(pattern)
                                              : bfs::basename(pattern);
    if (pattern.find('/') == std::string::npos)
        dir = env_.getcwd();
    int fd = env_.open(dir, 0);
    if (fd < 0)
        return {pattern};
    std::vector<sys::Dirent> entries;
    if (env_.getdents(fd, entries) != 0) {
        env_.close(fd);
        return {pattern};
    }
    env_.close(fd);
    std::vector<std::string> matches;
    for (const auto &e : entries) {
        if (e.name == "." || e.name == "..")
            continue;
        if (e.name.size() && e.name[0] == '.' && leaf[0] != '.')
            continue;
        if (sh::globMatch(leaf, e.name)) {
            if (pattern.find('/') == std::string::npos)
                matches.push_back(e.name);
            else
                matches.push_back(bfs::joinPath(dir, e.name));
        }
    }
    std::sort(matches.begin(), matches.end());
    if (matches.empty())
        return {pattern}; // POSIX: unmatched globs stay literal
    return matches;
}

std::vector<std::string>
Shell::expandWord(const Word &w)
{
    // Expand segments, then field-split unquoted stretches, then glob.
    std::vector<std::pair<std::string, bool>> pieces; // text, splittable
    for (const auto &seg : w.segments) {
        bool splittable = false;
        pieces.emplace_back(expandSegment(seg, splittable), splittable);
    }
    std::vector<std::string> fields;
    std::string cur;
    bool any = false;
    for (const auto &[text, splittable] : pieces) {
        any = true;
        if (!splittable) {
            cur += text;
            continue;
        }
        for (char c : text) {
            if (c == ' ' || c == '\t' || c == '\n') {
                if (!cur.empty()) {
                    fields.push_back(cur);
                    cur.clear();
                }
            } else {
                cur.push_back(c);
            }
        }
    }
    bool had_quotes = false;
    for (const auto &seg : w.segments)
        if (seg.quote != Segment::None)
            had_quotes = true;
    if (!cur.empty() || (fields.empty() && had_quotes && any))
        fields.push_back(cur);

    if (!sh::hasGlobChars(w))
        return fields;
    std::vector<std::string> out;
    for (const auto &f : fields) {
        if (f.find('*') != std::string::npos ||
            f.find('?') != std::string::npos) {
            auto g = globExpand(f);
            out.insert(out.end(), g.begin(), g.end());
        } else {
            out.push_back(f);
        }
    }
    return out;
}

// ---------------- execution ----------------

int
Shell::runList(const List &list)
{
    int status = 0;
    for (size_t i = 0; i < list.items.size(); i++) {
        const auto &[pipeline, op] = list.items[i];
        // && / || short-circuiting: the operator follows the pipeline
        // it guards.
        if (i > 0) {
            SeqOp prev = list.items[i - 1].second;
            if (prev == SeqOp::And && lastStatus_ != 0)
                continue;
            if (prev == SeqOp::Or && lastStatus_ == 0)
                continue;
        }
        status = runPipeline(pipeline, op == SeqOp::Background);
        lastStatus_ = status;
    }
    return status;
}

std::string
Shell::resolveProgram(const std::string &name)
{
    if (name.find('/') != std::string::npos)
        return name;
    std::string path = exports_.count("PATH") ? exports_.at("PATH")
                                              : "/usr/bin:/bin";
    size_t start = 0;
    while (start <= path.size()) {
        auto colon = path.find(':', start);
        if (colon == std::string::npos)
            colon = path.size();
        std::string dir = path.substr(start, colon - start);
        start = colon + 1;
        if (dir.empty())
            continue;
        std::string full = dir + "/" + name;
        if (env_.access(full, 0) == 0)
            return full;
    }
    return name; // spawn will fail with a useful error
}

bool
Shell::isBuiltin(const std::string &name) const
{
    static const char *builtins[] = {"cd", "pwd", "exit", "export",
                                     "unset", "true", "false", ":",
                                     "test", "[", "echo", "wait",
                                     "shift"};
    for (const char *b : builtins)
        if (name == b)
            return true;
    return false;
}

int
Shell::runBuiltin(const std::string &name,
                  const std::vector<std::string> &args, int fd_out)
{
    if (name == "true" || name == ":")
        return 0;
    if (name == "false")
        return 1;
    if (name == "cd") {
        std::string target = args.empty()
                                 ? (exports_.count("HOME")
                                        ? exports_.at("HOME")
                                        : "/")
                                 : args[0];
        int rc = env_.chdir(target);
        if (rc != 0) {
            env_.write(2, "sh: cd: " + target + ": No such directory\n");
            return 1;
        }
        return 0;
    }
    if (name == "pwd") {
        env_.write(fd_out, env_.getcwd() + "\n");
        return 0;
    }
    if (name == "echo") {
        std::string out;
        size_t start = 0;
        bool nl = true;
        if (!args.empty() && args[0] == "-n") {
            nl = false;
            start = 1;
        }
        for (size_t i = start; i < args.size(); i++) {
            if (i > start)
                out += " ";
            out += args[i];
        }
        if (nl)
            out += "\n";
        env_.write(fd_out, out);
        return 0;
    }
    if (name == "exit") {
        int code = args.empty() ? lastStatus_ : std::atoi(args[0].c_str());
        env_.exit(code);
    }
    if (name == "export") {
        for (const auto &a : args) {
            auto eq = a.find('=');
            if (eq == std::string::npos)
                exports_[a] = lookupVar(a);
            else
                exports_[a.substr(0, eq)] = a.substr(eq + 1);
        }
        return 0;
    }
    if (name == "unset") {
        for (const auto &a : args) {
            vars_.erase(a);
            exports_.erase(a);
        }
        return 0;
    }
    if (name == "wait") {
        for (int pid : jobs_) {
            int status = 0;
            env_.waitpid(pid, &status, 0);
            lastStatus_ = sys::wexitstatus(status);
        }
        jobs_.clear();
        return lastStatus_;
    }
    if (name == "shift") {
        if (scriptArgs_.size() > 1)
            scriptArgs_.erase(scriptArgs_.begin() + 1);
        return 0;
    }
    if (name == "test" || name == "[") {
        std::vector<std::string> a = args;
        if (name == "[" && !a.empty() && a.back() == "]")
            a.pop_back();
        auto statTest = [&](const std::string &path, char kind) {
            sys::StatX st;
            if (env_.stat(path, st) != 0)
                return false;
            if (kind == 'f')
                return st.isFile();
            if (kind == 'd')
                return st.isDir();
            return true; // -e
        };
        bool result = false;
        if (a.empty())
            result = false;
        else if (a.size() == 1)
            result = !a[0].empty();
        else if (a.size() == 2 && a[0] == "-n")
            result = !a[1].empty();
        else if (a.size() == 2 && a[0] == "-z")
            result = a[1].empty();
        else if (a.size() == 2 && a[0] == "-f")
            result = statTest(a[1], 'f');
        else if (a.size() == 2 && a[0] == "-d")
            result = statTest(a[1], 'd');
        else if (a.size() == 2 && a[0] == "-e")
            result = statTest(a[1], 'e');
        else if (a.size() == 3 && a[1] == "=")
            result = a[0] == a[2];
        else if (a.size() == 3 && a[1] == "!=")
            result = a[0] != a[2];
        else if (a.size() == 3 && a[1] == "-eq")
            result = std::atol(a[0].c_str()) == std::atol(a[2].c_str());
        else if (a.size() == 3 && a[1] == "-ne")
            result = std::atol(a[0].c_str()) != std::atol(a[2].c_str());
        else if (a.size() == 3 && a[1] == "-lt")
            result = std::atol(a[0].c_str()) < std::atol(a[2].c_str());
        else if (a.size() == 3 && a[1] == "-gt")
            result = std::atol(a[0].c_str()) > std::atol(a[2].c_str());
        return result ? 0 : 1;
    }
    return 127;
}

bool
Shell::applyRedirects(const Command &c, int fds[3],
                      std::vector<int> &to_close)
{
    for (const auto &r : c.redirs) {
        if (r.kind == Redirect::DupOut) {
            if (r.dupFd >= 0 && r.dupFd <= 2 && r.fd >= 0 && r.fd <= 2) {
                fds[r.fd] = fds[r.dupFd];
            }
            continue;
        }
        auto targets = expandWord(r.target);
        if (targets.size() != 1) {
            env_.write(2, "sh: ambiguous redirect\n");
            return false;
        }
        const std::string &path = targets[0];
        int fd;
        if (r.kind == Redirect::In) {
            fd = env_.open(path, bfs::flags::RDONLY);
        } else if (r.kind == Redirect::Append) {
            fd = env_.open(path, bfs::flags::CREAT | bfs::flags::APPEND |
                                     bfs::flags::WRONLY);
        } else {
            fd = env_.open(path, bfs::flags::CREAT | bfs::flags::TRUNC |
                                     bfs::flags::WRONLY);
        }
        if (fd < 0) {
            env_.write(2, "sh: cannot open " + path + "\n");
            return false;
        }
        to_close.push_back(fd);
        if (r.fd >= 0 && r.fd <= 2)
            fds[r.fd] = fd;
    }
    return true;
}

int
Shell::runSimple(const Command &c, int fd_in, int fd_out, bool wait_for,
                 int *pid_out)
{
    if (pid_out)
        *pid_out = -1;

    // Assignments.
    std::map<std::string, std::string> cmd_env = exports_;
    bool has_words = !c.words.empty() || c.subshell;
    for (const auto &[name, val] : c.assigns) {
        auto vals = expandWord(val);
        std::string v = vals.empty() ? "" : vals[0];
        if (has_words)
            cmd_env[name] = v;
        else
            vars_[name] = v;
    }
    if (!has_words)
        return 0;

    int fds[3] = {fd_in, fd_out, 2};
    std::vector<int> to_close;
    if (!applyRedirects(c, fds, to_close)) {
        for (int fd : to_close)
            env_.close(fd);
        return 1;
    }

    if (c.subshell) {
        // Run "( list )" in a child shell process for isolation.
        std::string body; // re-render is complex; spawn sh -c on source?
        // We keep the subshell's AST and run it in-process but with
        // saved/restored state — cheaper and sufficient for cwd/vars.
        auto saved_vars = vars_;
        auto saved_exports = exports_;
        std::string saved_cwd = env_.getcwd();
        int rc = runList(*c.subshell);
        vars_ = std::move(saved_vars);
        exports_ = std::move(saved_exports);
        env_.chdir(saved_cwd);
        for (int fd : to_close)
            env_.close(fd);
        (void)body;
        return rc;
    }

    std::vector<std::string> argv;
    for (const auto &w : c.words) {
        auto fields = expandWord(w);
        argv.insert(argv.end(), fields.begin(), fields.end());
    }
    if (argv.empty()) {
        for (int fd : to_close)
            env_.close(fd);
        return 0;
    }

    if (isBuiltin(argv[0]) && fd_in == 0 && wait_for) {
        std::vector<std::string> args(argv.begin() + 1, argv.end());
        int rc = runBuiltin(argv[0], args, fds[1]);
        for (int fd : to_close)
            env_.close(fd);
        return rc;
    }

    argv[0] = resolveProgram(argv[0]);
    int pid = env_.spawn(argv, cmd_env, "", {fds[0], fds[1], fds[2]});
    for (int fd : to_close)
        env_.close(fd);
    if (pid < 0) {
        env_.write(2, "sh: " + argv[0] + ": command not found\n");
        return 127;
    }
    if (pid_out)
        *pid_out = pid;
    if (!wait_for)
        return 0;
    int status = 0;
    int rc = env_.waitpid(pid, &status, 0);
    if (rc < 0)
        return 1;
    return sys::wifExited(status) ? sys::wexitstatus(status)
                                  : 128 + sys::wtermsig(status);
}

int
Shell::runPipeline(const Pipeline &p, bool background)
{
    if (p.commands.size() == 1 && !background) {
        return runSimple(p.commands[0], 0, 1, true, nullptr);
    }

    size_t n = p.commands.size();
    std::vector<int> pids;
    int prev_read = 0;
    int status = 0;
    for (size_t i = 0; i < n; i++) {
        int fd_in = prev_read;
        int fd_out = 1;
        int pipefds[2] = {-1, -1};
        if (i + 1 < n) {
            if (env_.pipe2(pipefds) != 0) {
                env_.write(2, "sh: pipe failed\n");
                return 1;
            }
            fd_out = pipefds[1];
        }
        int pid = -1;
        status = runSimple(p.commands[i], fd_in, fd_out, false, &pid);
        if (pid > 0)
            pids.push_back(pid);
        if (fd_in != 0)
            env_.close(fd_in);
        if (fd_out != 1)
            env_.close(fd_out);
        prev_read = pipefds[0];
    }

    if (background) {
        jobs_.insert(jobs_.end(), pids.begin(), pids.end());
        return 0;
    }
    int last = status;
    for (size_t i = 0; i < pids.size(); i++) {
        int st = 0;
        env_.waitpid(pids[i], &st, 0);
        last = sys::wifExited(st) ? sys::wexitstatus(st)
                                  : 128 + sys::wtermsig(st);
    }
    return last;
}

int
dashMain(rt::EmEnv &env)
{
    Shell shell(env);
    return shell.main();
}

} // namespace apps
} // namespace browsix
