/**
 * @file
 * The shell executor: dash's role in the Browsix terminal (§5.1.2) and
 * behind kernel.system(). Runs as an Emscripten (async/Emterpreter)
 * process; pipelines become pipe2+spawn+wait4 against the kernel,
 * redirections become open+fd-inheritance lists, `&` backgrounds a job.
 *
 * Supported: pipelines, ;, &&, ||, &, redirections (<, >, >>, 2>, 2>&1),
 * variables (assignment, $VAR/${VAR}, $?, $$, $#, $0..$9, $@), export,
 * command substitution $(...), globbing (*, ?), subshells ( ... ), and
 * the builtins cd, pwd, exit, export, unset, true, false, test/[, echo,
 * wait, shift, and ':'.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "apps/shell/shell_parse.h"
#include "runtime/emscripten/em_runtime.h"

namespace browsix {
namespace apps {

class Shell
{
  public:
    explicit Shell(rt::EmEnv &env);

    /** Entry point for the dash program: parses argv and runs. */
    int main();

    /** Run a script string (used directly by tests). */
    int runScript(const std::string &src);

  private:
    // --- expansion ---
    std::vector<std::string> expandWord(const sh::Word &w);
    std::string expandSegment(const sh::Segment &seg, bool &splittable);
    std::string expandDollars(const std::string &text);
    std::string lookupVar(const std::string &name);
    std::string commandSubst(const std::string &body);
    std::vector<std::string> globExpand(const std::string &pattern);

    // --- execution ---
    int runList(const sh::List &list);
    int runPipeline(const sh::Pipeline &p, bool background);
    int runSimple(const sh::Command &c, int fd_in, int fd_out,
                  bool wait_for, int *pid_out);
    int runBuiltin(const std::string &name,
                   const std::vector<std::string> &args, int fd_out);
    bool isBuiltin(const std::string &name) const;
    std::string resolveProgram(const std::string &name);

    /** Apply redirects: returns fds {0,1,2} plus fds to close after. */
    bool applyRedirects(const sh::Command &c, int fds[3],
                        std::vector<int> &to_close);

    rt::EmEnv &env_;
    std::map<std::string, std::string> vars_;     // shell variables
    std::map<std::string, std::string> exports_;  // exported environment
    std::vector<std::string> scriptArgs_;         // $0, $1, ...
    std::vector<int> jobs_;                       // background pids
    int lastStatus_ = 0;
};

/** Program entry registered as "dash" / "/bin/sh". */
int dashMain(rt::EmEnv &env);

} // namespace apps
} // namespace browsix
