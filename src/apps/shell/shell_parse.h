/**
 * @file
 * Shell lexer and parser (the dash-equivalent's front end, §5.1.2).
 *
 * Grammar (POSIX subset):
 *   list     := pipeline ((';' | '&' | '&&' | '||' | '\n') pipeline)*
 *   pipeline := command ('|' command)*
 *   command  := assignment* word* redirect*  |  '(' list ')' redirect*
 *
 * Words carry their quoting so the executor can apply parameter
 * expansion, field splitting, and globbing with the right rules. The
 * parser is pure (no kernel dependencies) and heavily unit-tested.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace browsix {
namespace apps {
namespace sh {

/** A quoted or unquoted run of characters within a word. */
struct Segment
{
    std::string text;
    enum Quote { None, Single, Double } quote = None;
};

struct Word
{
    std::vector<Segment> segments;

    /** The raw (unexpanded) text, for diagnostics. */
    std::string raw() const;
};

struct Redirect
{
    int fd = -1; ///< -1 = default for the kind (0 for <, 1 for >)
    enum Kind { In, Out, Append, DupOut } kind = Out;
    Word target;   ///< file target (In/Out/Append)
    int dupFd = 1; ///< for DupOut (e.g. 2>&1)
};

struct List;

struct Command
{
    std::vector<std::pair<std::string, Word>> assigns;
    std::vector<Word> words;
    std::vector<Redirect> redirs;
    std::shared_ptr<List> subshell; ///< set for '(' list ')'
};

struct Pipeline
{
    std::vector<Command> commands;
};

enum class SeqOp { Seq, Background, And, Or };

struct List
{
    /** Each pipeline paired with the operator *following* it. */
    std::vector<std::pair<Pipeline, SeqOp>> items;
};

/** Parse a script; returns false with a message on syntax errors. */
bool parseScript(const std::string &src, List &out, std::string &err);

/** Glob matching: '*' and '?' (no character classes). */
bool globMatch(const std::string &pattern, const std::string &name);

/** True if the word could glob (contains unquoted * or ?). */
bool hasGlobChars(const Word &w);

} // namespace sh
} // namespace apps
} // namespace browsix
