#include "apps/shell/shell_parse.h"

namespace browsix {
namespace apps {
namespace sh {

std::string
Word::raw() const
{
    std::string out;
    for (const auto &seg : segments)
        out += seg.text;
    return out;
}

namespace {

struct Token
{
    enum Type { WordTok, Op, End } type = End;
    Word word;
    std::string op;
};

/** Lexer: quoting-aware tokenizer. */
class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    bool
    lex(std::vector<Token> &out, std::string &err)
    {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == ' ' || c == '\t' || c == '\r') {
                flushWord(out);
                pos_++;
                continue;
            }
            if (c == '#' && !inWord_) {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    pos_++;
                continue;
            }
            if (c == '\n') {
                flushWord(out);
                pushOp(out, ";"); // newline separates like ';'
                pos_++;
                continue;
            }
            if (c == '\'') {
                if (!lexSingle(err))
                    return false;
                continue;
            }
            if (c == '"') {
                if (!lexDouble(err))
                    return false;
                continue;
            }
            if (c == '\\') {
                pos_++;
                if (pos_ < src_.size()) {
                    if (src_[pos_] == '\n') { // line continuation
                        pos_++;
                        continue;
                    }
                    appendChar(src_[pos_++], Segment::Single);
                }
                continue;
            }
            if (c == '$' && pos_ + 1 < src_.size() &&
                src_[pos_ + 1] == '(') {
                // Command substitution: capture balanced $( ... ).
                size_t depth = 1;
                size_t j = pos_ + 2;
                while (j < src_.size() && depth > 0) {
                    if (src_[j] == '(')
                        depth++;
                    else if (src_[j] == ')')
                        depth--;
                    j++;
                }
                if (depth != 0) {
                    err = "unterminated $(";
                    return false;
                }
                appendStr(src_.substr(pos_, j - pos_), Segment::None);
                pos_ = j;
                continue;
            }
            if (isOpChar(c)) {
                flushWord(out);
                if (!lexOp(out, err))
                    return false;
                continue;
            }
            appendChar(c, Segment::None);
            pos_++;
        }
        flushWord(out);
        out.push_back(Token{});
        return true;
    }

  private:
    bool
    isOpChar(char c) const
    {
        return c == '|' || c == ';' || c == '&' || c == '<' || c == '>' ||
               c == '(' || c == ')';
    }

    bool
    lexOp(std::vector<Token> &out, std::string &err)
    {
        char c = src_[pos_];
        char next = pos_ + 1 < src_.size() ? src_[pos_ + 1] : 0;
        if (c == '&' && next == '&') {
            pushOp(out, "&&");
            pos_ += 2;
        } else if (c == '|' && next == '|') {
            pushOp(out, "||");
            pos_ += 2;
        } else if (c == '>' && next == '>') {
            pushOp(out, ">>");
            pos_ += 2;
        } else if (c == '>' && next == '&') {
            pushOp(out, ">&");
            pos_ += 2;
        } else {
            pushOp(out, std::string(1, c));
            pos_++;
        }
        (void)err;
        return true;
    }

    bool
    lexSingle(std::string &err)
    {
        pos_++; // opening quote
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '\'')
            text.push_back(src_[pos_++]);
        if (pos_ >= src_.size()) {
            err = "unterminated single quote";
            return false;
        }
        pos_++; // closing
        appendStr(text, Segment::Single);
        return true;
    }

    bool
    lexDouble(std::string &err)
    {
        pos_++;
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '"') {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
                (src_[pos_ + 1] == '"' || src_[pos_ + 1] == '\\' ||
                 src_[pos_ + 1] == '$')) {
                pos_++;
            }
            text.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) {
            err = "unterminated double quote";
            return false;
        }
        pos_++;
        appendStr(text, Segment::Double);
        return true;
    }

    void
    appendChar(char c, Segment::Quote q)
    {
        appendStr(std::string(1, c), q);
    }

    void
    appendStr(const std::string &s, Segment::Quote q)
    {
        inWord_ = true;
        if (!cur_.segments.empty() && cur_.segments.back().quote == q)
            cur_.segments.back().text += s;
        else
            cur_.segments.push_back(Segment{s, q});
        // Quoted empty string still forms a word ("" -> empty arg).
    }

    void
    flushWord(std::vector<Token> &out)
    {
        if (!inWord_)
            return;
        Token t;
        t.type = Token::WordTok;
        t.word = std::move(cur_);
        out.push_back(std::move(t));
        cur_ = Word{};
        inWord_ = false;
    }

    void
    pushOp(std::vector<Token> &out, const std::string &op)
    {
        Token t;
        t.type = Token::Op;
        t.op = op;
        out.push_back(std::move(t));
    }

    const std::string &src_;
    size_t pos_ = 0;
    Word cur_;
    bool inWord_ = false;
};

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    bool
    parse(List &out, std::string &err)
    {
        if (!parseList(out, err, false))
            return false;
        if (!atEnd()) {
            err = "unexpected token '" + cur().op + "'";
            return false;
        }
        return true;
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    bool atEnd() const { return cur().type == Token::End; }
    bool
    isOp(const std::string &op) const
    {
        return cur().type == Token::Op && cur().op == op;
    }

    bool
    parseList(List &out, std::string &err, bool in_subshell)
    {
        for (;;) {
            // Skip empty separators.
            while (isOp(";"))
                pos_++;
            if (atEnd() || (in_subshell && isOp(")")))
                return true;

            Pipeline p;
            if (!parsePipeline(p, err))
                return false;

            SeqOp op = SeqOp::Seq;
            if (isOp("&&")) {
                op = SeqOp::And;
                pos_++;
            } else if (isOp("||")) {
                op = SeqOp::Or;
                pos_++;
            } else if (isOp("&")) {
                op = SeqOp::Background;
                pos_++;
            } else if (isOp(";")) {
                pos_++;
            } else if (!atEnd() && !(in_subshell && isOp(")"))) {
                err = "unexpected token after pipeline";
                return false;
            }
            out.items.emplace_back(std::move(p), op);
        }
    }

    bool
    parsePipeline(Pipeline &out, std::string &err)
    {
        for (;;) {
            Command c;
            if (!parseCommand(c, err))
                return false;
            out.commands.push_back(std::move(c));
            if (isOp("|")) {
                pos_++;
                continue;
            }
            return true;
        }
    }

    bool
    parseRedirect(Command &c, std::string &err)
    {
        // Handles: < file, > file, >> file, 2> file, 2>&1, >& n
        int fd = -1;
        if (cur().type == Token::WordTok) {
            // "2>" arrives as word "2" + op ">" only when adjacent; we
            // approximate: a 1-char numeric word directly before a
            // redirect op acts as its fd.
        }
        if (isOp("<")) {
            pos_++;
            if (cur().type != Token::WordTok) {
                err = "redirect needs a target";
                return false;
            }
            c.redirs.push_back(Redirect{fd < 0 ? 0 : fd, Redirect::In,
                                        cur().word, 0});
            pos_++;
            return true;
        }
        bool append = isOp(">>");
        if (isOp(">") || append) {
            pos_++;
            if (cur().type != Token::WordTok) {
                err = "redirect needs a target";
                return false;
            }
            c.redirs.push_back(Redirect{fd < 0 ? 1 : fd,
                                        append ? Redirect::Append
                                               : Redirect::Out,
                                        cur().word, 0});
            pos_++;
            return true;
        }
        if (isOp(">&")) {
            pos_++;
            if (cur().type != Token::WordTok) {
                err = ">& needs a target fd";
                return false;
            }
            Redirect r;
            r.fd = fd < 0 ? 1 : fd;
            r.kind = Redirect::DupOut;
            r.dupFd = std::atoi(cur().word.raw().c_str());
            c.redirs.push_back(r);
            pos_++;
            return true;
        }
        err = "not a redirect";
        return false;
    }

    bool
    parseCommand(Command &out, std::string &err)
    {
        if (isOp("(")) {
            pos_++;
            auto sub = std::make_shared<List>();
            if (!parseList(*sub, err, true))
                return false;
            if (!isOp(")")) {
                err = "missing ')'";
                return false;
            }
            pos_++;
            out.subshell = sub;
            // trailing redirects on the subshell
            while (isOp("<") || isOp(">") || isOp(">>") || isOp(">&")) {
                if (!parseRedirect(out, err))
                    return false;
            }
            return true;
        }

        bool saw_any = false;
        bool words_started = false;
        for (;;) {
            if (cur().type == Token::WordTok) {
                Word w = cur().word;
                // fd-prefixed redirect: word "2" followed by > or >&.
                std::string raw = w.raw();
                if (!raw.empty() && raw.size() == 1 && isdigit(raw[0]) &&
                    pos_ + 1 < toks_.size() &&
                    toks_[pos_ + 1].type == Token::Op &&
                    (toks_[pos_ + 1].op == ">" ||
                     toks_[pos_ + 1].op == ">>" ||
                     toks_[pos_ + 1].op == ">&" ||
                     toks_[pos_ + 1].op == "<")) {
                    int fd = raw[0] - '0';
                    pos_++; // consume the fd word
                    Command tmp;
                    if (!parseRedirect(tmp, err))
                        return false;
                    tmp.redirs.back().fd = fd;
                    out.redirs.push_back(tmp.redirs.back());
                    saw_any = true;
                    continue;
                }
                // Assignment? NAME=value before any word.
                auto eq = raw.find('=');
                bool assignable = !words_started && eq != std::string::npos &&
                                  eq > 0;
                if (assignable) {
                    for (size_t i = 0; i < eq; i++) {
                        char ch = raw[i];
                        if (!isalnum(ch) && ch != '_')
                            assignable = false;
                    }
                    // "NAME=" must sit inside an unquoted first segment.
                    if (w.segments.empty() ||
                        w.segments[0].quote != Segment::None ||
                        w.segments[0].text.size() < eq + 1)
                        assignable = false;
                }
                if (assignable) {
                    std::string name = raw.substr(0, eq);
                    Word val;
                    std::string rest0 = w.segments[0].text.substr(eq + 1);
                    if (!rest0.empty())
                        val.segments.push_back(
                            Segment{rest0, Segment::None});
                    for (size_t i = 1; i < w.segments.size(); i++)
                        val.segments.push_back(w.segments[i]);
                    out.assigns.emplace_back(name, std::move(val));
                    pos_++;
                    saw_any = true;
                    continue;
                }
                out.words.push_back(std::move(w));
                words_started = true;
                saw_any = true;
                pos_++;
                continue;
            }
            if (isOp("<") || isOp(">") || isOp(">>") || isOp(">&")) {
                if (!parseRedirect(out, err))
                    return false;
                saw_any = true;
                continue;
            }
            break;
        }
        if (!saw_any) {
            err = "expected a command";
            return false;
        }
        return true;
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

bool
parseScript(const std::string &src, List &out, std::string &err)
{
    Lexer lexer(src);
    std::vector<Token> toks;
    if (!lexer.lex(toks, err))
        return false;
    Parser parser(std::move(toks));
    return parser.parse(out, err);
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    size_t p = 0, n = 0;
    size_t star_p = std::string::npos, star_n = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == name[n] || pattern[p] == '?')) {
            p++;
            n++;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star_p = p++;
            star_n = n;
        } else if (star_p != std::string::npos) {
            p = star_p + 1;
            n = ++star_n;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        p++;
    return p == pattern.size();
}

bool
hasGlobChars(const Word &w)
{
    for (const auto &seg : w.segments) {
        if (seg.quote != Segment::None)
            continue;
        if (seg.text.find('*') != std::string::npos ||
            seg.text.find('?') != std::string::npos)
            return true;
    }
    return false;
}

} // namespace sh
} // namespace apps
} // namespace browsix
