#include "apps/awfy/awfy.h"

#include <algorithm>

#include "jsvm/util.h"
#include "runtime/emvm/assembler.h"

namespace browsix {
namespace apps {

namespace {

// ---------------------------------------------------------------------------
// Wrap-mod-2^64 helpers. The VM does all arithmetic on uint64 and
// reinterprets as int64; the native references must match bit-for-bit,
// including on overflow (plain signed overflow would be UB here).
// ---------------------------------------------------------------------------
int64_t wadd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t wmul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

int64_t wshr(int64_t a, int64_t b)
{
    // VM SHR is a logical shift on the uint64 bit pattern.
    return static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63));
}

// ---------------------------------------------------------------------------
// Shared assembly scaffolding: print_u32 (digits written backward into
// the scratch buffer at [456, 477), newline at 476) and a main() that
// runs the kernel at guest size and prints the checksum. Kernel data
// lives at >= 504 so the print buffer never aliases it; sieve is the
// exception (flags at offset 0) but it only prints after the scan.
// ---------------------------------------------------------------------------
const char *kPrintU32 = R"(
.func print_u32 1 2
    push 476
    storel 1
pdigits:
    loadl 1
    push 1
    sub
    storel 1
    loadl 1
    loadl 0
    push 10
    mods
    push 48
    add
    store8
    loadl 0
    push 10
    divs
    storel 0
    loadl 0
    jnz pdigits
    push 476
    push 10
    store8
    push 4
    push 1
    loadl 1
    push 477
    loadl 1
    sub
    syscall 3
    pop
    push 0
    ret
.end
)";

std::string mainSource(int64_t guestN)
{
    std::string s;
    s += ".func main 0 0\n";
    s += "    push " + std::to_string(guestN) + "\n";
    s += "    call run\n";
    s += "    call print_u32\n";
    s += "    halt\n";
    s += ".end\n";
    return s;
}

// ---------------------------------------------------------------------------
// Sieve of Eratosthenes. Byte flags at mem[0, n); returns the prime
// count. Inner loops are fusion bait: LOADL+LOAD8 flag reads,
// LOADL+PUSH+STORE8 flag writes, LOADL+LOADL+GE+JNZ loop guards, and
// the LOADL+PUSH+ADD+STOREL increment.
// ---------------------------------------------------------------------------
int64_t sieveNative(int64_t n)
{
    std::vector<uint8_t> flags(std::max<int64_t>(n, 0), 1);
    int64_t count = 0;
    for (int64_t i = 2; i < n; i++) {
        if (!flags[i])
            continue;
        count++;
        for (int64_t k = i + i; k < n; k += i)
            flags[k] = 0;
    }
    return count;
}

const char *kSieveRun = R"(
.memory 65536
.func run 1 4
    ; locals: 0=n 1=i 2=k 3=count
    push 0
    storel 1
init:
    loadl 1
    loadl 0
    ge
    jnz initdone
    loadl 1
    push 1
    store8
    loadl 1
    push 1
    add
    storel 1
    jmp init
initdone:
    push 0
    storel 3
    push 2
    storel 1
outer:
    loadl 1
    loadl 0
    ge
    jnz outerdone
    loadl 1
    load8
    jz next
    loadl 3
    push 1
    add
    storel 3
    loadl 1
    loadl 1
    add
    storel 2
inner:
    loadl 2
    loadl 0
    ge
    jnz next
    loadl 2
    push 0
    store8
    loadl 2
    loadl 1
    add
    storel 2
    jmp inner
next:
    loadl 1
    push 1
    add
    storel 1
    jmp outer
outerdone:
    loadl 3
    ret
.end
)";

// ---------------------------------------------------------------------------
// NBody, fixed-point. Three bodies, 16.16 coordinates, a fake
// inverse-square force computed with DIVS. State is load64/store64
// traffic at mem[512, 608); the checksum xor-folds the final state.
// ---------------------------------------------------------------------------
int64_t nbodyNative(int64_t n)
{
    int64_t x[3] = {0, 1 << 16, -(1 << 15)};
    int64_t y[3] = {1 << 16, -(1 << 15), 1 << 14};
    int64_t vx[3] = {0, 0, 0};
    int64_t vy[3] = {0, 0, 0};
    for (int64_t s = 0; s < n; s++) {
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 3; j++) {
                if (i == j)
                    continue;
                int64_t dx = wadd(x[j], -x[i]);
                int64_t dy = wadd(y[j], -y[i]);
                int64_t d2 = wadd(wmul(dx, dx), wmul(dy, dy));
                int64_t inv = 1000000 / (wshr(d2, 16) + 1000);
                vx[i] = wadd(vx[i], wmul(dx, inv) / 1000);
                vy[i] = wadd(vy[i], wmul(dy, inv) / 1000);
            }
        }
        for (int i = 0; i < 3; i++) {
            x[i] = wadd(x[i], vx[i] / 16);
            y[i] = wadd(y[i], vy[i] / 16);
        }
    }
    int64_t acc = 0;
    for (int i = 0; i < 3; i++) {
        acc = wadd(acc, x[i] ^ y[i]);
        acc = wadd(acc, vx[i] ^ vy[i]);
    }
    return acc & 0x7fffffff;
}

const char *kNbodyRun = R"(
.memory 4096
.func run 1 9
    ; locals: 0=n 1=step 2=i 3=j 4=dx 5=dy 6=inv 7=baseI 8=baseJ
    ; body i at 512 + i*32: x +0, y +8, vx +16, vy +24
    push 512
    push 0
    store64
    push 520
    push 65536
    store64
    push 528
    push 0
    store64
    push 536
    push 0
    store64
    push 544
    push 65536
    store64
    push 552
    push -32768
    store64
    push 560
    push 0
    store64
    push 568
    push 0
    store64
    push 576
    push -32768
    store64
    push 584
    push 16384
    store64
    push 592
    push 0
    store64
    push 600
    push 0
    store64
    push 0
    storel 1
steps:
    loadl 1
    loadl 0
    ge
    jnz stepsdone
    push 0
    storel 2
iloop:
    loadl 2
    push 3
    ge
    jnz idone
    loadl 2
    push 32
    mul
    push 512
    add
    storel 7
    push 0
    storel 3
jloop:
    loadl 3
    push 3
    ge
    jnz jdone
    loadl 2
    loadl 3
    eq
    jnz jnext
    loadl 3
    push 32
    mul
    push 512
    add
    storel 8
    loadl 8
    load64
    loadl 7
    load64
    sub
    storel 4
    loadl 8
    push 8
    add
    load64
    loadl 7
    push 8
    add
    load64
    sub
    storel 5
    push 1000000
    loadl 4
    loadl 4
    mul
    loadl 5
    loadl 5
    mul
    add
    push 16
    shr
    push 1000
    add
    divs
    storel 6
    loadl 7
    push 16
    add
    dup
    load64
    loadl 4
    loadl 6
    mul
    push 1000
    divs
    add
    store64
    loadl 7
    push 24
    add
    dup
    load64
    loadl 5
    loadl 6
    mul
    push 1000
    divs
    add
    store64
jnext:
    loadl 3
    push 1
    add
    storel 3
    jmp jloop
jdone:
    loadl 2
    push 1
    add
    storel 2
    jmp iloop
idone:
    push 0
    storel 2
ploop:
    loadl 2
    push 3
    ge
    jnz pdone
    loadl 2
    push 32
    mul
    push 512
    add
    storel 7
    loadl 7
    dup
    load64
    loadl 7
    push 16
    add
    load64
    push 16
    divs
    add
    store64
    loadl 7
    push 8
    add
    dup
    load64
    loadl 7
    push 24
    add
    load64
    push 16
    divs
    add
    store64
    loadl 2
    push 1
    add
    storel 2
    jmp ploop
pdone:
    loadl 1
    push 1
    add
    storel 1
    jmp steps
stepsdone:
    push 0
    storel 6
    push 0
    storel 2
csum:
    loadl 2
    push 3
    ge
    jnz csumdone
    loadl 2
    push 32
    mul
    push 512
    add
    storel 7
    loadl 6
    loadl 7
    load64
    loadl 7
    push 8
    add
    load64
    xor
    add
    storel 6
    loadl 6
    loadl 7
    push 16
    add
    load64
    loadl 7
    push 24
    add
    load64
    xor
    add
    storel 6
    loadl 2
    push 1
    add
    storel 2
    jmp csum
csumdone:
    loadl 6
    push 2147483647
    and
    ret
.end
)";

// ---------------------------------------------------------------------------
// Richards-lite. Six task slots stepped round-robin; each step is a
// CALL into an LCG mix over the task's counter. Deliberately CALL-heavy
// so every loop iteration crosses a trace exit — this kernel bounds the
// deopt overhead rather than showing off the trace tier.
// ---------------------------------------------------------------------------
int64_t richardsNative(int64_t n)
{
    int64_t c[6] = {0, 0, 0, 0, 0, 0};
    int64_t total = 0;
    int64_t t = 0;
    for (int64_t it = 0; it < n; it++) {
        c[t] = wadd(wmul(c[t], 1103515245), 12345);
        total = wadd(total, wshr(c[t], 33));
        t++;
        if (t >= 6)
            t = 0;
    }
    return total & 0x7fffffff;
}

const char *kRichardsRun = R"(
.memory 4096
.func step 1 3
    ; locals: 0=task 1=addr 2=c
    loadl 0
    push 8
    mul
    push 512
    add
    storel 1
    loadl 1
    load64
    push 1103515245
    mul
    push 12345
    add
    storel 2
    loadl 1
    loadl 2
    store64
    loadl 2
    push 33
    shr
    ret
.end
.func run 1 4
    ; locals: 0=n 1=iter 2=task 3=total
    push 0
    storel 1
    push 0
    storel 2
    push 0
    storel 3
loop:
    loadl 1
    loadl 0
    ge
    jnz done
    loadl 2
    call step
    loadl 3
    add
    storel 3
    loadl 2
    push 1
    add
    storel 2
    loadl 2
    push 6
    lt
    jnz noreset
    push 0
    storel 2
noreset:
    loadl 1
    push 1
    add
    storel 1
    jmp loop
done:
    loadl 3
    push 2147483647
    and
    ret
.end
)";

// ---------------------------------------------------------------------------
// Permute (the AWFY kernel): count the recursive permutation walk of an
// n-element vector. Exercises deep CALL/RET traffic and load64/store64
// swaps; recursion depth is n+1, well under the 1024-frame limit.
// ---------------------------------------------------------------------------
void permuteRec(std::vector<int64_t> &v, int64_t k, int64_t &count)
{
    count++;
    if (k == 0)
        return;
    int64_t k1 = k - 1;
    permuteRec(v, k1, count);
    for (int64_t i = k1; i >= 0; i--) {
        std::swap(v[k1], v[i]);
        permuteRec(v, k1, count);
        std::swap(v[k1], v[i]);
    }
}

int64_t permuteNative(int64_t n)
{
    std::vector<int64_t> v(std::max<int64_t>(n, 0));
    for (int64_t i = 0; i < n; i++)
        v[i] = i;
    int64_t count = 0;
    permuteRec(v, n, count);
    return count;
}

const char *kPermuteRun = R"(
.memory 4096
.func permute 1 6
    ; locals: 0=k 1=k1 2=i 3=addrA 4=addrB 5=tmp
    ; call count at mem64[504], v[i] at 512 + i*8
    push 504
    push 504
    load64
    push 1
    add
    store64
    loadl 0
    jz done
    loadl 0
    push 1
    sub
    storel 1
    loadl 1
    call permute
    pop
    loadl 1
    push 8
    mul
    push 512
    add
    storel 3
    loadl 1
    storel 2
floop:
    loadl 2
    push 0
    lt
    jnz done
    loadl 2
    push 8
    mul
    push 512
    add
    storel 4
    loadl 3
    load64
    storel 5
    loadl 3
    loadl 4
    load64
    store64
    loadl 4
    loadl 5
    store64
    loadl 1
    call permute
    pop
    loadl 3
    load64
    storel 5
    loadl 3
    loadl 4
    load64
    store64
    loadl 4
    loadl 5
    store64
    loadl 2
    push 1
    sub
    storel 2
    jmp floop
done:
    push 0
    ret
.end
.func run 1 2
    ; locals: 0=n 1=i
    push 504
    push 0
    store64
    push 0
    storel 1
init:
    loadl 1
    loadl 0
    ge
    jnz initdone
    loadl 1
    push 8
    mul
    push 512
    add
    loadl 1
    store64
    loadl 1
    push 1
    add
    storel 1
    jmp init
initdone:
    loadl 0
    call permute
    pop
    push 504
    load64
    ret
.end
)";

// ---------------------------------------------------------------------------
// Json-scan: a byte-at-a-time tokenizer state machine over a JSON
// document baked into .data at 1024 (scan ends at the NUL byte the
// zero-filled memory guarantees). Branchy byte-load code that the trace
// tier keeps entirely in registers.
// ---------------------------------------------------------------------------
const char *kJsonDoc =
    "{\"name\": \"awfy json\", \"items\": [1, 2, 3,"
    " {\"k\": \"v\\\"quoted\\\"\", \"n\": null, \"p\": \"a\\\\b\"}],"
    " \"flags\": [true, false], \"depth\": {\"a\": {\"b\": [0]}}}";

int64_t jsonNative(int64_t n)
{
    const char *doc = kJsonDoc;
    int64_t len = static_cast<int64_t>(std::char_traits<char>::length(doc));
    int64_t acc = 0;
    for (int64_t p = 0; p < n; p++) {
        bool instr = false;
        for (int64_t i = 0; i < len; i++) {
            uint8_t c = static_cast<uint8_t>(doc[i]);
            if (instr) {
                if (c == '\\') {
                    acc = wadd(acc, 7);
                    i++;
                } else if (c == '"') {
                    acc = wadd(acc, 5);
                    instr = false;
                }
            } else {
                if (c == '"') {
                    instr = true;
                    acc = wadd(acc, 3);
                } else if (c == '{' || c == '}' || c == '[' || c == ']' ||
                           c == ':' || c == ',') {
                    acc = wadd(acc, 1);
                }
            }
        }
    }
    return acc & 0x7fffffff;
}

// Re-escape the shared document for the assembler's .data string syntax
// so the guest scans byte-identical input to the native reference.
std::string asmEscape(const char *s)
{
    std::string out;
    for (const char *p = s; *p; p++) {
        if (*p == '\\' || *p == '"')
            out += '\\';
        out += *p;
    }
    return out;
}

std::string jsonRunSource()
{
    std::string s = ".memory 4096\n.data 1024 \"" + asmEscape(kJsonDoc) +
                    "\"\n";
    s += R"(
.func run 1 6
    ; locals: 0=n 1=pass 2=i 3=c 4=instr 5=acc
    push 0
    storel 1
    push 0
    storel 5
pass:
    loadl 1
    loadl 0
    ge
    jnz passdone
    push 1024
    storel 2
    push 0
    storel 4
scan:
    loadl 2
    load8
    storel 3
    loadl 3
    jz scandone
    loadl 4
    jz notin
    loadl 3
    push 92
    eq
    jz chkclose
    loadl 5
    push 7
    add
    storel 5
    loadl 2
    push 1
    add
    storel 2
    jmp adv
chkclose:
    loadl 3
    push 34
    eq
    jz adv
    loadl 5
    push 5
    add
    storel 5
    push 0
    storel 4
    jmp adv
notin:
    loadl 3
    push 34
    eq
    jz chkstruct
    push 1
    storel 4
    loadl 5
    push 3
    add
    storel 5
    jmp adv
chkstruct:
    loadl 3
    push 123
    eq
    jnz struct
    loadl 3
    push 125
    eq
    jnz struct
    loadl 3
    push 91
    eq
    jnz struct
    loadl 3
    push 93
    eq
    jnz struct
    loadl 3
    push 58
    eq
    jnz struct
    loadl 3
    push 44
    eq
    jnz struct
    jmp adv
struct:
    loadl 5
    push 1
    add
    storel 5
adv:
    loadl 2
    push 1
    add
    storel 2
    jmp scan
scandone:
    loadl 1
    push 1
    add
    storel 1
    jmp pass
passdone:
    loadl 5
    push 2147483647
    and
    ret
.end
)";
    return s;
}

// ---------------------------------------------------------------------------
// Suite table and image cache.
// ---------------------------------------------------------------------------
struct AwfyDef
{
    AwfyBench bench;
    std::string runSource; // kernel assembly, without main/print_u32
};

const std::vector<AwfyDef> &defs()
{
    static const std::vector<AwfyDef> d = [] {
        std::vector<AwfyDef> v;
        // smokeN is sized so the trace tier's warmup (64 backedges per
        // loop before promotion) amortizes: the smoke ratios then sit
        // close to the full-tier ones and the hard ceilings in
        // check_trajectory.py gate real speedup, not warmup noise. The
        // whole smoke suite still finishes in well under a second.
        v.push_back({{"sieve", 30000, 8000, 5000, sieveNative}, kSieveRun});
        v.push_back({{"nbody", 4000, 1000, 500, nbodyNative}, kNbodyRun});
        v.push_back(
            {{"richards", 120000, 24000, 20000, richardsNative}, kRichardsRun});
        v.push_back({{"permute", 7, 6, 6, permuteNative}, kPermuteRun});
        v.push_back({{"json", 800, 240, 100, jsonNative}, jsonRunSource()});
        return v;
    }();
    return d;
}

const AwfyDef *defFor(const std::string &name)
{
    for (const auto &d : defs()) {
        if (d.bench.name == name)
            return &d;
    }
    return nullptr;
}

emvm::Image assembleOrDie(const std::string &src, const std::string &name)
{
    emvm::Image img;
    std::string err;
    if (!emvm::assemble(src, img, err))
        jsvm::panic("awfy '" + name + "' failed to assemble: " + err);
    return img;
}

} // namespace

const std::vector<AwfyBench> &awfyBenches()
{
    static const std::vector<AwfyBench> benches = [] {
        std::vector<AwfyBench> v;
        for (const auto &d : defs())
            v.push_back(d.bench);
        return v;
    }();
    return benches;
}

const AwfyBench *awfyBench(const std::string &name)
{
    const AwfyDef *d = defFor(name);
    return d ? &d->bench : nullptr;
}

emvm::Image awfyImage(const std::string &name)
{
    const AwfyDef *d = defFor(name);
    if (!d)
        jsvm::panic("unknown awfy bench: " + name);
    std::string src = d->runSource;
    src += kPrintU32;
    src += mainSource(d->bench.guestN);
    return assembleOrDie(src, name);
}

bfs::Buffer awfyImageBytes(const std::string &name)
{
    const AwfyDef *d = defFor(name);
    if (!d)
        jsvm::panic("unknown awfy bench: " + name);
    // Cache the serialized bytes per kernel; staging re-requests them
    // for every kernel boot.
    static std::vector<std::pair<std::string, bfs::Buffer>> cache = [] {
        std::vector<std::pair<std::string, bfs::Buffer>> c;
        for (const auto &def : defs()) {
            emvm::Image img = awfyImage(def.bench.name);
            c.emplace_back(def.bench.name, img.serialize());
        }
        return c;
    }();
    for (const auto &entry : cache) {
        if (entry.first == name)
            return entry.second;
    }
    jsvm::panic("unknown awfy bench: " + name);
    return {};
}

} // namespace apps
} // namespace browsix
