/**
 * @file
 * AWFY-style macro kernels as emvm guests (ROADMAP item 4): Sieve,
 * NBody (fixed-point), Richards-lite, Permute, and Json-scan, in the
 * spirit of the "Are We Fast Yet" cross-VM suite. Each kernel exists
 * twice — as emvm assembly (the guest under test) and as a native C++
 * reference with identical wrap-mod-2^64 arithmetic — so the bench and
 * the differential tests can assert that every execution tier computes
 * the exact same result the hardware does.
 *
 * Each image exposes:
 *  - `run(n)`: the kernel; returns its checksum as the exit value.
 *    Pure compute, no syscalls — callable on a bare `emvm::Vm`.
 *  - `main()`: runs the kernel at a small guest-sized n and prints the
 *    checksum, so the staged `/usr/bin/awfy-<name>` binaries behave
 *    like the other emvm coreutils.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bfs/types.h"
#include "runtime/emvm/vm.h"

namespace browsix {
namespace apps {

struct AwfyBench
{
    std::string name;  ///< short name: sieve, nbody, richards, permute, json
    int64_t benchN;    ///< problem size for the full bench tier
    int64_t smokeN;    ///< problem size for BROWSIX_BENCH_SMOKE
    int64_t guestN;    ///< problem size the staged main() uses
    int64_t (*native)(int64_t n); ///< reference result for run(n)
};

/** The five kernels, in suite order. */
const std::vector<AwfyBench> &awfyBenches();

/** Lookup by name; nullptr if unknown. */
const AwfyBench *awfyBench(const std::string &name);

/** Assembled image for one kernel (panics on unknown name). */
emvm::Image awfyImage(const std::string &name);

/** Serialized "BSXBC1" bytes, for staging at /usr/bin/awfy-<name>. */
bfs::Buffer awfyImageBytes(const std::string &name);

} // namespace apps
} // namespace browsix
