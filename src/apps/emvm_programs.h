/**
 * @file
 * Bytecode demo programs for the Emterpreter VM: assembly sources for
 * executables the tests and terminal run directly (fork with a real
 * memory+PC snapshot, compute loops, hello-world).
 */
#pragma once

#include "bfs/types.h"

namespace browsix {
namespace apps {

/** forktest: forks; the child and parent print different lines, the
 * parent wait4()s the child first. Exercises §4.3's fork path with a
 * byte-exact machine snapshot. */
bfs::Buffer forktestImageBytes();

/** primes N: counts primes below its memory-configured bound and prints
 * the count — a pure compute benchmark for interpretation overhead. */
bfs::Buffer primesImageBytes();

/** hello: writes a line to stdout and exits 0. */
bfs::Buffer helloImageBytes();

} // namespace apps
} // namespace browsix
