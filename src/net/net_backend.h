/**
 * @file
 * The connection-transport contract behind Browsix sockets.
 *
 * `kernel/socket.cc` keeps the SOCK_STREAM state machine (bind/listen/
 * accept/connect, §3.5) but no longer owns how bytes travel between the
 * two endpoints of a connection: that is a NetBackend. The backend owns
 * the port namespace (bound port → listening socket), the listen
 * notifications (§4.1), the accept/connect rendezvous — including the
 * deferral-protocol parking used by ring-native connect — and, per
 * connection, the per-direction byte streams both endpoints are
 * established over.
 *
 * Two implementations ship today, mirroring friscy's pluggable
 * network_rpc_host shape:
 *
 *  - LoopbackBackend: the in-kernel path — one Pipe pair per
 *    connection, both endpoints touch the same two Pipes. Zero added
 *    latency; this is what every Browsix kernel booted without a
 *    backend argument gets, and is byte-for-byte the pre-refactor
 *    behavior.
 *
 *  - net::SimBackend (netsim.h): every direction's bytes traverse a
 *    latency/bandwidth-shaped simulated link (LinkParams) before
 *    becoming readable at the far end — the connection-scale serving
 *    benchmarks drive 1k+ concurrent shaped connections through it.
 *
 * Threading: backends run on the kernel's main loop, like every other
 * kernel subsystem — no locks.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "kernel/socket.h"

namespace browsix {
namespace net {

/** One endpoint's view of a connection: rx is read from, tx written to. */
struct EndpointStreams
{
    kernel::PipePtr rx, tx;
};

/** Both endpoints' stream pairs for one new connection. */
struct ConnectionStreams
{
    EndpointStreams client, server;
};

class NetBackend
{
  public:
    virtual ~NetBackend() = default;

    virtual const char *name() const = 0;

    /**
     * Build the transport for one new connection: the four stream ends
     * both SocketFiles are established over. For loopback the client's
     * tx IS the server's rx (one shared Pipe per direction); a shaped
     * backend interposes links, so the pairs are distinct Pipes.
     */
    virtual ConnectionStreams makeConnection() = 0;

    // ----- port namespace -----

    /** Publish a listener and fire any onPortListen watchers. */
    void addListener(int port, kernel::SocketFilePtr listener);

    /** Remove a listener (owner exited or closed the socket). */
    void dropListener(int port) { listeners_.erase(port); }

    /**
     * The live listener on `port`, or nullptr. Entries whose socket has
     * left the Listening state (fd closed without the owner exiting)
     * are dropped lazily here, so a connect to a closed-but-once-bound
     * port refuses instead of touching a dead socket.
     */
    kernel::SocketFilePtr listener(int port);

    bool portListening(int port) const;

    /** §4.1 socket notification: cb fires when `port` gains a listener
     * (immediately if it already has one). */
    void onPortListen(int port, std::function<void()> cb);

    /** Client-side port for a new connection's near end. */
    int allocEphemeralPort() { return nextEphemeral_++; }

    /**
     * Server-side bind port: `requested` itself when free, a scanned
     * ephemeral when 0, or -EADDRINUSE when a listener already owns it.
     */
    int allocBindPort(int requested);

    // ----- accept/connect rendezvous -----

    /**
     * Immediate connect (the host-API path): establish `client` against
     * the listener on `port`. Returns 0 or ECONNREFUSED; on refusal all
     * four stream ends of the would-be connection are collapsed so a
     * shaped backend's links unwind too.
     */
    int connect(kernel::SocketFile &client, int port);

    /**
     * Deferral-protocol connect: like connect(), but when the
     * listener's backlog is full the rendezvous parks and `done` fires
     * later — 0 when accept frees a slot (the client endpoint is
     * established before parking), ECONNREFUSED when the listener
     * closes. Immediate outcomes run `done` before returning. Returns
     * true when the completion parked.
     */
    bool connectOrPark(kernel::SocketFilePtr client, int port,
                       std::function<void(int err)> done);

  private:
    std::map<int, kernel::SocketFilePtr> listeners_;
    std::multimap<int, std::function<void()>> listenWatchers_;
    int nextEphemeral_ = 49152;
    int nextBind_ = 32768;
};

using NetBackendPtr = std::shared_ptr<NetBackend>;

/** The in-kernel Pipe-pair transport (the pre-refactor behavior). */
class LoopbackBackend : public NetBackend
{
  public:
    const char *name() const override { return "loopback"; }
    ConnectionStreams makeConnection() override;
};

} // namespace net
} // namespace browsix
