#include "net/http_server.h"

#include "runtime/syscall_proto.h"

namespace browsix {
namespace net {

namespace {

HttpResponse
errorResponse(int status, const char *reason, bool close)
{
    HttpResponse resp;
    resp.status = status;
    resp.reason = reason;
    std::string text = std::to_string(status) + " " + reason + "\n";
    resp.body.assign(text.begin(), text.end());
    resp.headers["content-type"] = "text/plain";
    if (close)
        resp.headers["connection"] = "close";
    return resp;
}

} // namespace

void
HttpServer::flush(int fd, std::vector<bfs::Buffer> &out)
{
    if (out.empty())
        return;
    transport_.writev(fd, out);
    out.clear();
}

bool
HttpServer::respond(Conn &c, std::vector<bfs::Buffer> &out, bool pipelined)
{
    const HttpRequest &req = c.parser.request();
    stats_.requests++;
    if (c.requests > 0)
        stats_.keepAliveReuses++;
    if (pipelined)
        stats_.pipelinedRequests++;
    c.requests++;

    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; either side of
    // the default is overridden by an explicit Connection header.
    bool want_close =
        !opts_.keepAlive || req.header("connection") == "close" ||
        (req.version == "HTTP/1.0" &&
         req.header("connection") != "keep-alive");

    HttpResponse resp = handler_(req);
    if (want_close)
        resp.headers["connection"] = "close";

    if (!resp.bodyFile.empty() && resp.body.empty()) {
        // sendfile path: headers first (with the file's length), then
        // the body streams file→socket without entering this process.
        int64_t len = transport_.fileSize(resp.bodyFile);
        if (len < 0) {
            out.push_back(
                serializeResponse(errorResponse(404, "Not Found",
                                                want_close)));
            stats_.bytesOut += out.back().size();
            return !want_close;
        }
        resp.headers["content-length"] = std::to_string(len);
        out.push_back(serializeResponse(resp));
        stats_.bytesOut += out.back().size();
        flush(c.fd, out);
        int64_t sent = transport_.sendFile(c.fd, resp.bodyFile,
                                           static_cast<size_t>(len));
        if (sent < 0)
            return false; // mid-stream failure: only option is to close
        stats_.sendfileBodies++;
        stats_.bytesOut += static_cast<uint64_t>(sent);
        return !want_close;
    }

    bool chunked =
        resp.header("transfer-encoding").find("chunked") !=
        std::string::npos;
    out.push_back(chunked ? serializeResponseChunked(resp)
                          : serializeResponse(resp));
    if (chunked)
        stats_.chunkedBodies++;
    stats_.bytesOut += out.back().size();
    return !want_close;
}

bool
HttpServer::onBytes(Conn &c, const uint8_t *data, size_t len,
                    std::vector<bfs::Buffer> &out)
{
    if (c.closing)
        return true; // FIN already sent: discard until the peer's EOF

    bool ok = c.parser.feed(data, len);
    bool pipelined = false;
    while (ok && c.parser.done()) {
        if (!respond(c, out, pipelined))
            return false;
        pipelined = true;
        c.parser.reset(); // re-parses pipelined trailing bytes
        ok = !c.parser.failed();
    }
    if (!ok) {
        stats_.parseErrors++;
        out.push_back(
            serializeResponse(errorResponse(400, "Bad Request", true)));
        stats_.bytesOut += out.back().size();
        return false;
    }
    return true;
}

void
HttpServer::serveConn(int fd)
{
    stats_.connections++;
    Conn c;
    c.fd = fd;
    c.parser.setMaxHeaderBytes(opts_.maxHeaderBytes);
    c.parser.setMaxBodyBytes(opts_.maxBodyBytes);
    bfs::Buffer chunk;
    std::vector<bfs::Buffer> out;
    for (;;) {
        chunk.clear();
        int64_t n = transport_.read(fd, chunk, opts_.readChunk);
        if (n < 0)
            break;
        if (n == 0) {
            if (!c.parser.idle() && !c.parser.done())
                stats_.truncated++;
            break;
        }
        out.clear();
        bool keep = onBytes(c, chunk.data(), static_cast<size_t>(n), out);
        flush(fd, out);
        if (!keep)
            break;
    }
    // Graceful teardown: FIN our side, then drain whatever the peer had
    // in flight so its writes don't die EPIPE, and only then close.
    transport_.shutdownWrite(fd);
    for (;;) {
        chunk.clear();
        if (transport_.read(fd, chunk, opts_.readChunk) <= 0)
            break;
    }
    transport_.close(fd);
}

int
HttpServer::run(int listener_fd)
{
    auto *ev = dynamic_cast<HttpEventTransport *>(&transport_);
    if (!ev)
        return -ENOTSUP;
    int ep = ev->epollCreate();
    if (ep < 0)
        return ep;
    int rc = ev->epollCtl(ep, sys::EPOLL_CTL_ADD_, listener_fd,
                          sys::POLLIN_);
    if (rc < 0)
        return rc;

    std::map<int, Conn> conns;
    bool draining = false;
    std::vector<HttpEventTransport::Event> events;
    std::vector<int> ready;
    std::vector<bfs::Buffer> chunks;
    std::vector<int64_t> ns;
    std::vector<bfs::Buffer> out;

    while (!(draining && conns.empty())) {
        int n = ev->epollWait(ep, events, sys::kEpollMaxEvents);
        if (n < 0)
            return n;
        ready.clear();
        for (int i = 0; i < n; i++) {
            const auto &e = events[static_cast<size_t>(i)];
            if (e.fd == listener_fd) {
                // One accept per listener event: level-triggered epoll
                // re-reports the listener while the backlog is non-empty,
                // so the queue drains one connection per loop pass
                // without parking a flotilla of ACCEPT SQEs.
                if (draining)
                    continue;
                int cfd = ev->accept(listener_fd);
                if (cfd < 0)
                    continue;
                stats_.connections++;
                Conn c;
                c.fd = cfd;
                c.parser.setMaxHeaderBytes(opts_.maxHeaderBytes);
                c.parser.setMaxBodyBytes(opts_.maxBodyBytes);
                conns.emplace(cfd, std::move(c));
                ev->epollCtl(ep, sys::EPOLL_CTL_ADD_, cfd, sys::POLLIN_);
            } else if (conns.count(e.fd)) {
                ready.push_back(e.fd);
            }
        }
        if (!ready.empty()) {
            // All ready connections read in one batched pass (one
            // doorbell on ring transports), then each one's responses
            // coalesce into a single writev.
            ev->readBatch(ready, opts_.readChunk, chunks, ns);
            for (size_t i = 0; i < ready.size(); i++) {
                auto it = conns.find(ready[i]);
                if (it == conns.end())
                    continue;
                Conn &c = it->second;
                int64_t r = ns[i];
                if (r > 0) {
                    out.clear();
                    bool keep = onBytes(c, chunks[i].data(),
                                        static_cast<size_t>(r), out);
                    flush(c.fd, out);
                    if (!keep && !c.closing) {
                        // Server-initiated close is graceful too: FIN,
                        // keep reading until the peer's EOF below.
                        transport_.shutdownWrite(c.fd);
                        c.closing = true;
                    }
                    continue;
                }
                if (r == 0 && !c.closing && !c.parser.idle() &&
                    !c.parser.done())
                    stats_.truncated++;
                ev->epollCtl(ep, sys::EPOLL_CTL_DEL_, c.fd, 0);
                transport_.close(c.fd);
                conns.erase(it);
            }
        }
        if (!draining && opts_.maxRequests &&
            stats_.requests >= opts_.maxRequests) {
            draining = true;
            ev->epollCtl(ep, sys::EPOLL_CTL_DEL_, listener_fd, 0);
        }
    }
    transport_.close(ep);
    return 0;
}

} // namespace net
} // namespace browsix
