#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace browsix {
namespace net {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    size_t e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

void
appendStr(std::vector<uint8_t> &out, const std::string &s)
{
    out.insert(out.end(), s.begin(), s.end());
}

} // namespace

std::string
HttpRequest::header(const std::string &name, const std::string &dflt) const
{
    auto it = headers.find(toLower(name));
    return it == headers.end() ? dflt : it->second;
}

std::string
HttpResponse::header(const std::string &name, const std::string &dflt) const
{
    auto it = headers.find(toLower(name));
    return it == headers.end() ? dflt : it->second;
}

std::vector<uint8_t>
serializeRequest(const HttpRequest &req)
{
    std::vector<uint8_t> out;
    appendStr(out, req.method + " " + req.target + " " + req.version +
                       "\r\n");
    bool has_len = req.headers.count("content-length") > 0;
    for (const auto &[k, v] : req.headers)
        appendStr(out, k + ": " + v + "\r\n");
    if (!has_len && (!req.body.empty() || req.method == "POST" ||
                     req.method == "PUT"))
        appendStr(out,
                  "content-length: " + std::to_string(req.body.size()) +
                      "\r\n");
    appendStr(out, "\r\n");
    out.insert(out.end(), req.body.begin(), req.body.end());
    return out;
}

std::vector<uint8_t>
serializeResponse(const HttpResponse &resp)
{
    std::vector<uint8_t> out;
    appendStr(out, resp.version + " " + std::to_string(resp.status) + " " +
                       resp.reason + "\r\n");
    bool has_len = resp.headers.count("content-length") > 0;
    for (const auto &[k, v] : resp.headers)
        appendStr(out, k + ": " + v + "\r\n");
    if (!has_len)
        appendStr(out,
                  "content-length: " + std::to_string(resp.body.size()) +
                      "\r\n");
    appendStr(out, "\r\n");
    out.insert(out.end(), resp.body.begin(), resp.body.end());
    return out;
}

std::vector<uint8_t>
serializeResponseChunked(const HttpResponse &resp, size_t chunk_size)
{
    std::vector<uint8_t> out;
    appendStr(out, resp.version + " " + std::to_string(resp.status) + " " +
                       resp.reason + "\r\n");
    for (const auto &[k, v] : resp.headers) {
        if (k == "content-length")
            continue;
        appendStr(out, k + ": " + v + "\r\n");
    }
    appendStr(out, "transfer-encoding: chunked\r\n\r\n");
    size_t off = 0;
    while (off < resp.body.size()) {
        size_t n = std::min(chunk_size, resp.body.size() - off);
        std::ostringstream sz;
        sz << std::hex << n;
        appendStr(out, sz.str() + "\r\n");
        out.insert(out.end(), resp.body.begin() + off,
                   resp.body.begin() + off + n);
        appendStr(out, "\r\n");
        off += n;
    }
    appendStr(out, "0\r\n\r\n");
    return out;
}

bool
HttpParser::parseStartLine(const std::string &line)
{
    std::istringstream is(line);
    if (mode_ == Mode::Request) {
        if (!(is >> req_.method >> req_.target >> req_.version))
            return false;
        return req_.version.rfind("HTTP/", 0) == 0;
    }
    std::string status;
    if (!(is >> resp_.version >> status))
        return false;
    std::string reason;
    std::getline(is, reason);
    resp_.reason = trim(reason);
    try {
        resp_.status = std::stoi(status);
    } catch (...) {
        return false;
    }
    return resp_.version.rfind("HTTP/", 0) == 0;
}

bool
HttpParser::parseHeaderLine(const std::string &line)
{
    auto colon = line.find(':');
    if (colon == std::string::npos)
        return false;
    std::string name = toLower(trim(line.substr(0, colon)));
    std::string value = trim(line.substr(colon + 1));
    if (mode_ == Mode::Request)
        req_.headers[name] = value;
    else
        resp_.headers[name] = value;
    return true;
}

void
HttpParser::finishHeaders()
{
    std::string te = mode_ == Mode::Request
                         ? req_.header("transfer-encoding")
                         : resp_.header("transfer-encoding");
    if (toLower(te).find("chunked") != std::string::npos) {
        chunked_ = true;
        state_ = State::ChunkSize;
        return;
    }
    std::string cl = mode_ == Mode::Request
                         ? req_.header("content-length", "0")
                         : resp_.header("content-length", "0");
    try {
        bodyRemaining_ = static_cast<size_t>(std::stoull(cl));
    } catch (...) {
        state_ = State::Error;
        return;
    }
    if (maxBodyBytes_ && bodyRemaining_ > maxBodyBytes_) {
        state_ = State::Error;
        return;
    }
    state_ = bodyRemaining_ == 0 ? State::Done : State::Body;
}

bool
HttpParser::feed(const uint8_t *data, size_t len)
{
    if (state_ == State::Error)
        return false;
    if (state_ == State::Done) {
        trailing_.insert(trailing_.end(), data, data + len);
        return true;
    }
    buf_.insert(buf_.end(), data, data + len);

    size_t pos = 0;
    auto &body = mode_ == Mode::Request ? req_.body : resp_.body;

    auto takeLine = [&](std::string &line) -> bool {
        for (size_t i = pos; i + 1 < buf_.size(); i++) {
            if (buf_[i] == '\r' && buf_[i + 1] == '\n') {
                line.assign(buf_.begin() + pos, buf_.begin() + i);
                pos = i + 2;
                return true;
            }
        }
        return false;
    };

    for (;;) {
        switch (state_) {
          case State::StartLine: {
            std::string line;
            if (!takeLine(line))
                goto out;
            if (line.empty())
                continue; // tolerate leading blank lines
            headerBytes_ += line.size() + 2;
            if (!parseStartLine(line)) {
                state_ = State::Error;
                return false;
            }
            state_ = State::Headers;
            break;
          }
          case State::Headers: {
            std::string line;
            if (!takeLine(line))
                goto out;
            headerBytes_ += line.size() + 2;
            if (headerBytes_ > maxHeaderBytes_) {
                state_ = State::Error;
                return false;
            }
            if (line.empty()) {
                finishHeaders();
                if (state_ == State::Error)
                    return false;
                break;
            }
            if (!parseHeaderLine(line)) {
                state_ = State::Error;
                return false;
            }
            break;
          }
          case State::Body: {
            size_t avail = buf_.size() - pos;
            size_t n = std::min(avail, bodyRemaining_);
            body.insert(body.end(), buf_.begin() + pos,
                        buf_.begin() + pos + n);
            pos += n;
            bodyRemaining_ -= n;
            if (bodyRemaining_ == 0)
                state_ = State::Done;
            if (state_ != State::Done)
                goto out;
            break;
          }
          case State::ChunkSize: {
            std::string line;
            if (!takeLine(line))
                goto out;
            std::string sz = trim(line);
            // Chunk extensions (";name=value") are allowed but ignored.
            auto semi = sz.find(';');
            if (semi != std::string::npos)
                sz = trim(sz.substr(0, semi));
            // Strict hex: stoull would accept "10junk" or "  -1".
            if (sz.empty() || sz.size() > 16 ||
                sz.find_first_not_of("0123456789abcdefABCDEF") !=
                    std::string::npos) {
                state_ = State::Error;
                return false;
            }
            chunkRemaining_ =
                static_cast<size_t>(std::stoull(sz, nullptr, 16));
            if (maxBodyBytes_ &&
                body.size() + chunkRemaining_ > maxBodyBytes_) {
                state_ = State::Error;
                return false;
            }
            state_ = chunkRemaining_ == 0 ? State::ChunkTrailer
                                          : State::ChunkData;
            break;
          }
          case State::ChunkData: {
            size_t avail = buf_.size() - pos;
            size_t n = std::min(avail, chunkRemaining_);
            body.insert(body.end(), buf_.begin() + pos,
                        buf_.begin() + pos + n);
            pos += n;
            chunkRemaining_ -= n;
            if (chunkRemaining_ > 0)
                goto out; // mid-chunk, need more data
            // The chunk's terminating CRLF must follow its data.
            if (buf_.size() - pos < 2)
                goto out; // re-enters here (chunkRemaining_ == 0)
            if (buf_[pos] != '\r' || buf_[pos + 1] != '\n') {
                state_ = State::Error;
                return false;
            }
            pos += 2;
            state_ = State::ChunkSize;
            break;
          }
          case State::ChunkTrailer: {
            std::string line;
            if (!takeLine(line))
                goto out;
            if (line.empty())
                state_ = State::Done;
            break;
          }
          case State::Done:
            trailing_.insert(trailing_.end(), buf_.begin() + pos,
                             buf_.end());
            pos = buf_.size();
            goto out;
          case State::Error:
            return false;
        }
    }
out:
    buf_.erase(buf_.begin(), buf_.begin() + pos);
    // A header section that still has no complete line past the cap can
    // only grow — fail it now instead of buffering without bound.
    if ((state_ == State::StartLine || state_ == State::Headers) &&
        headerBytes_ + buf_.size() > maxHeaderBytes_) {
        state_ = State::Error;
        return false;
    }
    return true;
}

void
HttpParser::reset()
{
    state_ = State::StartLine;
    lineBuf_.clear();
    bodyRemaining_ = 0;
    chunkRemaining_ = 0;
    headerBytes_ = 0;
    chunked_ = false;
    req_ = HttpRequest{};
    resp_ = HttpResponse{};
    buf_.clear();
    // Pipelined bytes begin the next message — re-parse them now, so a
    // complete back-to-back message is done() without waiting for more
    // bytes that may never arrive.
    std::vector<uint8_t> pending = std::move(trailing_);
    trailing_.clear();
    if (!pending.empty())
        feed(pending.data(), pending.size());
}

std::string
urlDecode(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); i++) {
        if (s[i] == '%' && i + 2 < s.size()) {
            auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                if (c >= 'A' && c <= 'F')
                    return c - 'A' + 10;
                return -1;
            };
            int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out.push_back(static_cast<char>(hi * 16 + lo));
                i += 2;
                continue;
            }
        }
        if (s[i] == '+')
            out.push_back(' ');
        else
            out.push_back(s[i]);
    }
    return out;
}

std::map<std::string, std::string>
parseQuery(const std::string &query)
{
    std::map<std::string, std::string> out;
    size_t start = 0;
    while (start < query.size()) {
        size_t amp = query.find('&', start);
        if (amp == std::string::npos)
            amp = query.size();
        std::string kv = query.substr(start, amp - start);
        size_t eq = kv.find('=');
        if (eq == std::string::npos)
            out[urlDecode(kv)] = "";
        else
            out[urlDecode(kv.substr(0, eq))] = urlDecode(kv.substr(eq + 1));
        start = amp + 1;
    }
    return out;
}

std::pair<std::string, std::map<std::string, std::string>>
splitTarget(const std::string &target)
{
    auto q = target.find('?');
    if (q == std::string::npos)
        return {target, {}};
    return {target.substr(0, q), parseQuery(target.substr(q + 1))};
}

} // namespace net
} // namespace browsix
