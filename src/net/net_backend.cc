#include "net/net_backend.h"

namespace browsix {
namespace net {

using kernel::SocketFile;
using kernel::SocketFilePtr;

void
NetBackend::addListener(int port, SocketFilePtr l)
{
    listeners_[port] = std::move(l);
    auto range = listenWatchers_.equal_range(port);
    std::vector<std::function<void()>> fns;
    for (auto it = range.first; it != range.second; ++it)
        fns.push_back(std::move(it->second));
    listenWatchers_.erase(range.first, range.second);
    for (auto &fn : fns)
        fn();
}

SocketFilePtr
NetBackend::listener(int port)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end())
        return nullptr;
    if (it->second->state() != SocketFile::State::Listening) {
        listeners_.erase(it);
        return nullptr;
    }
    return it->second;
}

bool
NetBackend::portListening(int port) const
{
    auto it = listeners_.find(port);
    return it != listeners_.end() &&
           it->second->state() == SocketFile::State::Listening;
}

void
NetBackend::onPortListen(int port, std::function<void()> cb)
{
    if (portListening(port)) {
        cb();
        return;
    }
    listenWatchers_.emplace(port, std::move(cb));
}

int
NetBackend::allocBindPort(int requested)
{
    if (requested != 0)
        return portListening(requested) ? -EADDRINUSE : requested;
    while (portListening(nextBind_))
        nextBind_++;
    return nextBind_++;
}

namespace {

/** Unwind a connection that never reached its far endpoint: close all
 * four ends so shaped links (which hold the staging pipes) tear down. */
void
collapseConnection(ConnectionStreams &cs)
{
    for (EndpointStreams *end : {&cs.client, &cs.server}) {
        end->rx->closeReader();
        end->rx->closeWriter();
        end->tx->closeReader();
        end->tx->closeWriter();
    }
}

} // namespace

int
NetBackend::connect(SocketFile &client, int port)
{
    SocketFilePtr l = listener(port);
    if (!l)
        return ECONNREFUSED;
    int client_port = allocEphemeralPort();
    ConnectionStreams cs = makeConnection();
    auto server_end = std::make_shared<SocketFile>();
    server_end->establish(cs.server.rx, cs.server.tx, port, client_port);
    int rc = l->enqueueConnection(server_end);
    if (rc) {
        collapseConnection(cs);
        return rc;
    }
    client.establish(cs.client.rx, cs.client.tx, client_port, port);
    return 0;
}

bool
NetBackend::connectOrPark(SocketFilePtr client, int port,
                          std::function<void(int err)> done)
{
    SocketFilePtr l = listener(port);
    if (!l) {
        done(ECONNREFUSED);
        return false;
    }
    int client_port = allocEphemeralPort();
    ConnectionStreams cs = makeConnection();
    auto server_end = std::make_shared<SocketFile>();
    server_end->establish(cs.server.rx, cs.server.tx, port, client_port);
    // Establish the client half before the rendezvous: a parked connect
    // must already be Connected when accept later promotes it, and on
    // refusal the listener collapses the server half's streams, which
    // the established client half observes as EOF/EPIPE.
    client->establish(cs.client.rx, cs.client.tx, client_port, port);
    return l->enqueueConnectionOrPark(std::move(server_end),
                                      std::move(done));
}

ConnectionStreams
LoopbackBackend::makeConnection()
{
    auto to_server = std::make_shared<kernel::Pipe>();
    auto to_client = std::make_shared<kernel::Pipe>();
    return {{to_client, to_server}, {to_server, to_client}};
}

} // namespace net
} // namespace browsix
