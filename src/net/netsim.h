/**
 * @file
 * Simulated wide-area network for the "remote server" comparisons.
 *
 * The paper compares requests served by a meme server running inside
 * Browsix against the same server running on a remote EC2 instance
 * (§5.2): once network round-trips are factored in, the in-browser server
 * wins by ~3x. This module models that remote path: a request/response
 * exchange across a link with a round-trip latency and finite bandwidth,
 * with the server computing natively (it runs on a real machine).
 */
#pragma once

#include <cstdint>
#include <functional>

#include "jsvm/event_loop.h"
#include "net/http.h"

namespace browsix {
namespace net {

struct LinkParams
{
    int64_t rttUs = 0;     ///< round-trip latency
    double bytesPerUs = 0; ///< bandwidth; 0 = infinite

    int64_t oneWayUs(size_t bytes) const
    {
        return rttUs / 2 +
               (bytesPerUs > 0 ? static_cast<int64_t>(bytes / bytesPerUs)
                               : 0);
    }

    /** A 2016-vintage client-to-EC2 path: ~30 ms RTT, ~50 Mbit/s. */
    static LinkParams ec2();
    /** Loopback: negligible. */
    static LinkParams localhost();
};

/**
 * A server reachable only across a simulated link. The handler runs
 * natively (real elapsed time counts as server compute time).
 */
class SimulatedRemoteServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;
    using ResponseCb = std::function<void(int err, HttpResponse)>;

    SimulatedRemoteServer(jsvm::EventLoop *loop, LinkParams link,
                          Handler handler)
        : loop_(loop), link_(link), handler_(std::move(handler))
    {
    }

    /** Issue a request; the callback fires on the event loop. */
    void request(const HttpRequest &req, ResponseCb cb);

    uint64_t requestCount() const { return requests_; }

  private:
    jsvm::EventLoop *loop_;
    LinkParams link_;
    Handler handler_;
    uint64_t requests_ = 0;
};

} // namespace net
} // namespace browsix
