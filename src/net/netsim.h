/**
 * @file
 * Simulated wide-area network for the "remote server" comparisons.
 *
 * The paper compares requests served by a meme server running inside
 * Browsix against the same server running on a remote EC2 instance
 * (§5.2): once network round-trips are factored in, the in-browser server
 * wins by ~3x. This module models that remote path: a request/response
 * exchange across a link with a round-trip latency and finite bandwidth,
 * with the server computing natively (it runs on a real machine).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "jsvm/event_loop.h"
#include "net/http.h"
#include "net/net_backend.h"

namespace browsix {
namespace net {

struct LinkParams
{
    int64_t rttUs = 0;     ///< round-trip latency
    double bytesPerUs = 0; ///< bandwidth; 0 = infinite

    int64_t oneWayUs(size_t bytes) const
    {
        return rttUs / 2 +
               (bytesPerUs > 0 ? static_cast<int64_t>(bytes / bytesPerUs)
                               : 0);
    }

    /** A 2016-vintage client-to-EC2 path: ~30 ms RTT, ~50 Mbit/s. */
    static LinkParams ec2();
    /** Loopback: negligible. */
    static LinkParams localhost();
};

/**
 * A server reachable only across a simulated link. The handler runs
 * natively (real elapsed time counts as server compute time).
 */
class SimulatedRemoteServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;
    using ResponseCb = std::function<void(int err, HttpResponse)>;

    SimulatedRemoteServer(jsvm::EventLoop *loop, LinkParams link,
                          Handler handler)
        : loop_(loop), link_(link), handler_(std::move(handler))
    {
    }

    /** Issue a request; the callback fires on the event loop. */
    void request(const HttpRequest &req, ResponseCb cb);

    uint64_t requestCount() const { return requests_; }

  private:
    jsvm::EventLoop *loop_;
    LinkParams link_;
    Handler handler_;
    uint64_t requests_ = 0;
};

/**
 * A NetBackend whose connections traverse simulated links: every byte a
 * socket transmits crosses a LinkParams-shaped path (serialization at
 * the link's bandwidth, then half an RTT of propagation) before it
 * becomes readable at the far endpoint, in both directions.
 *
 * Implementation: each direction is a pair of Pipes bridged by a link
 * pump — the sender's tx is a staging pipe the pump drains in ~16 KiB
 * chunks, each chunk departing after the previous one finishes
 * serializing (bandwidth) and arriving half an RTT later via an
 * EventLoop timer, where it is written into the receiver's rx pipe.
 * An in-flight byte window (~256 KiB) makes the sender observe
 * backpressure. EOF propagates as a FIN: closing the staging pipe's
 * write side schedules the far pipe's writer close one propagation
 * delay later, so the receiver drains shaped bytes before EOF.
 *
 * Timers come from the supplied EventLoop, so under jsvm::TestClock the
 * whole transport is deterministic virtual time; under the real clock
 * it shapes wall-clock latency (the connection-scale bench uses small
 * real-time parameters).
 */
class SimBackend : public NetBackend
{
  public:
    struct Stats
    {
        uint64_t connections = 0;
        uint64_t linkChunks = 0; ///< shaped transmissions (≤16 KiB each)
        uint64_t bytesShaped = 0;
    };

    SimBackend(jsvm::EventLoop *loop, LinkParams link)
        : loop_(loop), link_(link), stats_(std::make_shared<Stats>())
    {
    }

    const char *name() const override { return "netsim"; }
    ConnectionStreams makeConnection() override;

    const Stats &stats() const { return *stats_; }
    const LinkParams &link() const { return link_; }

  private:
    jsvm::EventLoop *loop_;
    LinkParams link_;
    std::shared_ptr<Stats> stats_; // shared with in-flight link pumps
};

} // namespace net
} // namespace browsix
