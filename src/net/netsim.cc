#include "net/netsim.h"

#include <algorithm>

#include "jsvm/util.h"

namespace browsix {
namespace net {

namespace {

/**
 * One direction of a simulated connection: drains the sender-side
 * staging pipe and re-writes each chunk into the receiver-side pipe
 * after link shaping. Self-owning — the pending read/timer callbacks
 * hold the only shared_ptr, so a link lives exactly as long as bytes
 * or a FIN are still in flight and tears down when both pipes are done.
 */
class SimLink : public std::enable_shared_from_this<SimLink>
{
  public:
    static constexpr size_t kChunk = 16 * 1024;
    static constexpr size_t kWindow = 256 * 1024;

    SimLink(jsvm::EventLoop *loop, LinkParams link, kernel::PipePtr in,
            kernel::PipePtr out, std::shared_ptr<SimBackend::Stats> stats)
        : loop_(loop), link_(link), in_(std::move(in)),
          out_(std::move(out)), stats_(std::move(stats))
    {
    }

    void pump()
    {
        if (closed_ || reading_)
            return;
        if (inFlight_ >= kWindow) {
            // Window full: the sender keeps stalling against the staging
            // pipe; delivery completions below re-pump.
            stalled_ = true;
            return;
        }
        reading_ = true;
        auto self = shared_from_this();
        in_->read(kChunk, [self](int err, bfs::BufferPtr data) {
            self->reading_ = false;
            if (err || self->closed_)
                return;
            if (!data || data->empty()) {
                self->sendFin();
                return;
            }
            self->transmit(std::move(data));
            self->pump();
        });
    }

  private:
    void transmit(bfs::BufferPtr data)
    {
        size_t bytes = data->size();
        inFlight_ += bytes;
        stats_->linkChunks++;
        stats_->bytesShaped += bytes;
        // Chunks serialize back-to-back at the link's bandwidth, then
        // propagate for half an RTT. Departures are serialized through
        // lastDepartureUs_ so a burst can't arrive all at once.
        int64_t now = jsvm::nowUs();
        int64_t serialize_us =
            link_.bytesPerUs > 0
                ? static_cast<int64_t>(bytes / link_.bytesPerUs)
                : 0;
        int64_t depart = std::max(now, lastDepartureUs_) + serialize_us;
        lastDepartureUs_ = depart;
        int64_t arrive = depart + link_.rttUs / 2;
        auto self = shared_from_this();
        loop_->setTimeout(
            [self, data = std::move(data), bytes]() mutable {
                if (self->closed_)
                    return;
                self->out_->write(std::move(*data), [self, bytes](int err,
                                                                  size_t) {
                    if (err) {
                        // Receiver gone (EPIPE): propagate the reset back
                        // so the sender's writes start failing too.
                        self->closed_ = true;
                        self->in_->closeReader();
                        return;
                    }
                    self->inFlight_ -= bytes;
                    if (self->stalled_) {
                        self->stalled_ = false;
                        self->pump();
                    }
                });
            },
            arrive - now);
    }

    void sendFin()
    {
        auto self = shared_from_this();
        int64_t now = jsvm::nowUs();
        int64_t arrive = std::max(now, lastDepartureUs_) + link_.rttUs / 2;
        loop_->setTimeout([self]() { self->out_->closeWriter(); },
                          arrive - now);
    }

    jsvm::EventLoop *loop_;
    LinkParams link_;
    kernel::PipePtr in_, out_;
    std::shared_ptr<SimBackend::Stats> stats_;
    int64_t lastDepartureUs_ = 0;
    size_t inFlight_ = 0;
    bool reading_ = false;
    bool stalled_ = false;
    bool closed_ = false;
};

} // namespace

LinkParams
LinkParams::ec2()
{
    // Same-region EC2 from a well-connected client, 2016: ~12 ms RTT,
    // ~50 Mbit/s. With the paper's ~9 ms in-browser request this puts
    // the remote server ~3x behind, as §5.2 reports.
    return LinkParams{/*rttUs=*/12000, /*bytesPerUs=*/6.25};
}

LinkParams
LinkParams::localhost()
{
    return LinkParams{/*rttUs=*/50, /*bytesPerUs=*/0};
}

void
SimulatedRemoteServer::request(const HttpRequest &req, ResponseCb cb)
{
    requests_++;
    size_t up_bytes = serializeRequest(req).size();
    int64_t up_delay = link_.oneWayUs(up_bytes);
    loop_->setTimeout(
        [this, req, cb = std::move(cb)]() {
            HttpResponse resp = handler_(req);
            size_t down_bytes = serializeResponse(resp).size();
            int64_t down_delay = link_.oneWayUs(down_bytes);
            loop_->setTimeout(
                [cb, resp = std::move(resp)]() { cb(0, resp); },
                down_delay);
        },
        up_delay);
}

ConnectionStreams
SimBackend::makeConnection()
{
    stats_->connections++;
    // Four pipes: each direction has a sender-side staging pipe the link
    // drains and a receiver-side pipe it delivers into.
    auto c2s_stage = std::make_shared<kernel::Pipe>();
    auto c2s_out = std::make_shared<kernel::Pipe>();
    auto s2c_stage = std::make_shared<kernel::Pipe>();
    auto s2c_out = std::make_shared<kernel::Pipe>();
    std::make_shared<SimLink>(loop_, link_, c2s_stage, c2s_out, stats_)
        ->pump();
    std::make_shared<SimLink>(loop_, link_, s2c_stage, s2c_out, stats_)
        ->pump();
    return {{s2c_out, c2s_stage}, {c2s_out, s2c_stage}};
}

} // namespace net
} // namespace browsix
