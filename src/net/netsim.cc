#include "net/netsim.h"

namespace browsix {
namespace net {

LinkParams
LinkParams::ec2()
{
    // Same-region EC2 from a well-connected client, 2016: ~12 ms RTT,
    // ~50 Mbit/s. With the paper's ~9 ms in-browser request this puts
    // the remote server ~3x behind, as §5.2 reports.
    return LinkParams{/*rttUs=*/12000, /*bytesPerUs=*/6.25};
}

LinkParams
LinkParams::localhost()
{
    return LinkParams{/*rttUs=*/50, /*bytesPerUs=*/0};
}

void
SimulatedRemoteServer::request(const HttpRequest &req, ResponseCb cb)
{
    requests_++;
    size_t up_bytes = serializeRequest(req).size();
    int64_t up_delay = link_.oneWayUs(up_bytes);
    loop_->setTimeout(
        [this, req, cb = std::move(cb)]() {
            HttpResponse resp = handler_(req);
            size_t down_bytes = serializeResponse(resp).size();
            int64_t down_delay = link_.oneWayUs(down_bytes);
            loop_->setTimeout(
                [cb, resp = std::move(resp)]() { cb(0, resp); },
                down_delay);
        },
        up_delay);
}

} // namespace net
} // namespace browsix
