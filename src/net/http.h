/**
 * @file
 * HTTP/1.1 message parsing and serialization.
 *
 * Browsix replaces Node's native HTTP parser with a pure-JavaScript one
 * (§4.3) and provides an XMLHttpRequest-like API that serializes requests
 * to bytes, sends them over a Browsix socket, and parses the (possibly
 * chunked) response (§4.1). This module is that parser/serializer; it is
 * shared by the in-Browsix servers (Go and Node runtimes) and the client.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace browsix {
namespace net {

struct HttpRequest
{
    std::string method = "GET";
    std::string target = "/";
    std::string version = "HTTP/1.1";
    std::map<std::string, std::string> headers; // lower-cased names
    std::vector<uint8_t> body;

    std::string header(const std::string &name, const std::string &dflt = "")
        const;
};

struct HttpResponse
{
    int status = 200;
    std::string reason = "OK";
    std::string version = "HTTP/1.1";
    std::map<std::string, std::string> headers; // lower-cased names
    std::vector<uint8_t> body;

    /**
     * When set (and body empty), the body is this Browsix file, streamed
     * by net::HttpServer straight from the filesystem to the connection
     * (kernel-side sendfile on ring transports) — the handler never
     * touches the bytes. Ignored by plain serializeResponse.
     */
    std::string bodyFile;

    std::string header(const std::string &name, const std::string &dflt = "")
        const;
};

/** Serialize with a Content-Length header (adding it if absent). */
std::vector<uint8_t> serializeRequest(const HttpRequest &req);
std::vector<uint8_t> serializeResponse(const HttpResponse &resp);

/** Serialize a response using chunked transfer encoding. */
std::vector<uint8_t> serializeResponseChunked(const HttpResponse &resp,
                                              size_t chunk_size = 1024);

/**
 * Incremental HTTP parser. Feed bytes as they arrive off a socket; a
 * complete message is reported exactly once. Handles Content-Length and
 * chunked bodies.
 */
class HttpParser
{
  public:
    enum class Mode { Request, Response };

    explicit HttpParser(Mode mode) : mode_(mode) {}

    /** Feed incoming bytes; returns false on a malformed message. */
    bool feed(const uint8_t *data, size_t len);
    bool feed(const std::vector<uint8_t> &data)
    {
        return feed(data.data(), data.size());
    }

    bool done() const { return state_ == State::Done; }
    bool failed() const { return state_ == State::Error; }

    /**
     * True when no message is in progress: nothing fed since the last
     * reset(). An EOF observed while !idle() && !done() is a truncated
     * message (the peer died mid-request/response).
     */
    bool idle() const
    {
        return state_ == State::StartLine && buf_.empty();
    }

    /** Cap on start-line + header bytes (per message). Default 64 KiB;
     * exceeding it is a parse error. */
    void setMaxHeaderBytes(size_t n) { maxHeaderBytes_ = n; }
    /** Cap on declared/accumulated body bytes. 0 = unlimited. A
     * Content-Length or chunk total past it is a parse error. */
    void setMaxBodyBytes(size_t n) { maxBodyBytes_ = n; }

    /** Valid once done() (mode Request). */
    const HttpRequest &request() const { return req_; }
    /** Valid once done() (mode Response). */
    const HttpResponse &response() const { return resp_; }

    /** Bytes fed beyond the end of the message (pipelining). */
    const std::vector<uint8_t> &trailingBytes() const { return trailing_; }

    /** Reset to parse another message. */
    void reset();

  private:
    enum class State { StartLine, Headers, Body, ChunkSize, ChunkData,
                       ChunkTrailer, Done, Error };

    bool parseStartLine(const std::string &line);
    bool parseHeaderLine(const std::string &line);
    void finishHeaders();

    Mode mode_;
    State state_ = State::StartLine;
    std::string lineBuf_;
    std::vector<uint8_t> buf_;
    size_t bodyRemaining_ = 0;
    size_t chunkRemaining_ = 0;
    size_t headerBytes_ = 0;
    size_t maxHeaderBytes_ = 64 * 1024;
    size_t maxBodyBytes_ = 0;
    bool chunked_ = false;
    HttpRequest req_;
    HttpResponse resp_;
    std::vector<uint8_t> trailing_;
};

/** Parse a query string ("a=1&b=2") into a map; minimal %XX decoding. */
std::map<std::string, std::string> parseQuery(const std::string &query);

/** Split a request target into path and query map. */
std::pair<std::string, std::map<std::string, std::string>>
splitTarget(const std::string &target);

/** Percent-decode. */
std::string urlDecode(const std::string &s);

} // namespace net
} // namespace browsix
