/**
 * @file
 * net::HttpServer — the connection-handling loop behind every in-Browsix
 * HTTP server, built on HttpParser.
 *
 * Guest servers used to hand-roll their socket loops (read, scan for
 * "\r\n\r\n", write, close). This class owns that loop once: keep-alive
 * connection reuse, pipelined requests (several requests in one read),
 * Content-Length and chunked responses, sendfile-backed static bodies,
 * hostile-input rejection (400 on malformed framing, header/body caps),
 * and graceful teardown (FIN via shutdown(2), then drain to EOF).
 *
 * The server is transport-agnostic: HttpTransport abstracts the five
 * byte-level operations, so the same loop runs over a Gopher runtime's
 * blocking syscalls (goroutine-per-connection, serveConn), an EmEnv
 * ring (epoll + batched readv/writev/sendfile SQEs, run), or an
 * in-memory fake in unit tests.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bfs/types.h"
#include "net/http.h"

namespace browsix {
namespace net {

/** Byte-level connection ops an HttpServer drives. Negative returns are
 * -errno; read() returning 0 is EOF. */
class HttpTransport
{
  public:
    virtual ~HttpTransport() = default;

    /** Read up to maxlen bytes into out (appended). 0 = EOF. */
    virtual int64_t read(int fd, bfs::Buffer &out, size_t maxlen) = 0;
    /** Write every buffer, in order, fully. Returns bytes written. */
    virtual int64_t writev(int fd, const std::vector<bfs::Buffer> &bufs) = 0;
    /** Half-close: FIN the write side (shutdown(2) SHUT_WR). */
    virtual int shutdownWrite(int fd) = 0;
    virtual int close(int fd) = 0;

    /** Size of a file a response names via bodyFile; -errno/-1 when it
     * cannot be served that way (the server then answers 404). */
    virtual int64_t fileSize(const std::string &path)
    {
        (void)path;
        return -1;
    }
    /** Stream the file to the connection (kernel-side sendfile on ring
     * transports). Returns bytes sent or -errno. */
    virtual int64_t sendFile(int fd, const std::string &path, size_t len)
    {
        (void)fd;
        (void)path;
        (void)len;
        return -ENOSYS;
    }
};

/**
 * Readiness-driven transport for HttpServer::run: one event loop serves
 * every connection. The listener itself sits in the epoll interest set
 * (accept one per listener-POLLIN event; level-triggered epoll
 * re-reports the rest), so thousands of idle connections cost nothing.
 */
class HttpEventTransport : public HttpTransport
{
  public:
    struct Event
    {
        int fd = -1;
        int events = 0;
    };

    /** Accept one pending connection; -errno (e.g. -EAGAIN) when none. */
    virtual int accept(int listener_fd) = 0;
    virtual int epollCreate() = 0;
    virtual int epollCtl(int epfd, int op, int fd, int events) = 0;
    virtual int epollWait(int epfd, std::vector<Event> &out,
                          size_t maxevents) = 0;

    /**
     * Read from many ready connections in one pass. Ring transports
     * submit one READ SQE per fd and flush the whole batch under a
     * single doorbell; the default is a serial fallback.
     */
    virtual void readBatch(const std::vector<int> &fds, size_t maxlen,
                           std::vector<bfs::Buffer> &outs,
                           std::vector<int64_t> &ns)
    {
        outs.assign(fds.size(), {});
        ns.assign(fds.size(), 0);
        for (size_t i = 0; i < fds.size(); i++)
            ns[i] = read(fds[i], outs[i], maxlen);
    }
};

struct HttpServerOptions
{
    bool keepAlive = true;
    size_t maxHeaderBytes = 64 * 1024;
    size_t maxBodyBytes = 4 * 1024 * 1024;
    size_t readChunk = 16 * 1024;
    /** run() only: stop accepting after this many requests served and
     * drain live connections; 0 = serve forever. */
    uint64_t maxRequests = 0;
};

struct HttpServerStats
{
    uint64_t connections = 0;
    uint64_t requests = 0;
    /// Requests beyond the first on their connection (keep-alive wins).
    uint64_t keepAliveReuses = 0;
    /// Requests completed by bytes already buffered with an earlier
    /// request (back-to-back in one read).
    uint64_t pipelinedRequests = 0;
    uint64_t parseErrors = 0;
    /// Connections that hit EOF mid-message (peer died mid-request).
    uint64_t truncated = 0;
    uint64_t bytesOut = 0;
    uint64_t sendfileBodies = 0;
    uint64_t chunkedBodies = 0;
};

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer(HttpTransport &transport, Handler handler,
               HttpServerOptions opts = {})
        : transport_(transport), handler_(std::move(handler)), opts_(opts)
    {
    }

    /**
     * Serve one connection to completion, blocking-call style — the
     * goroutine-per-connection shape. Closes fd before returning
     * (graceful: FIN first, then drain the peer's remaining bytes).
     */
    void serveConn(int fd);

    /**
     * Serve every connection off one epoll loop — the ring-native
     * shape. Requires an HttpEventTransport (-ENOTSUP otherwise).
     * Returns 0 after opts.maxRequests requests have been served and
     * every live connection has wound down.
     */
    int run(int listener_fd);

    const HttpServerStats &stats() const { return stats_; }

  private:
    struct Conn
    {
        int fd = -1;
        HttpParser parser{HttpParser::Mode::Request};
        uint64_t requests = 0;
        bool closing = false; ///< FIN sent; discard reads until EOF
    };

    /** Feed bytes; serialize responses for every completed request into
     * out. Returns false when the connection must close (after out is
     * flushed). */
    bool onBytes(Conn &c, const uint8_t *data, size_t len,
                 std::vector<bfs::Buffer> &out);
    bool respond(Conn &c, std::vector<bfs::Buffer> &out, bool pipelined);
    void flush(int fd, std::vector<bfs::Buffer> &out);

    HttpTransport &transport_;
    Handler handler_;
    HttpServerOptions opts_;
    HttpServerStats stats_;
};

} // namespace net
} // namespace browsix
