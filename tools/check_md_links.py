#!/usr/bin/env python3
"""Markdown link-and-anchor checker (stdlib only).

Walks every tracked *.md file in the repo and fails on dead *relative*
links: a target file that does not exist, or a `#fragment` that names
no heading in the target document. External schemes (http/https/mailto)
are out of scope — CI must stay hermetic — as is anything inside a
fenced code block.

Anchors are matched against GitHub's heading slugs: lowercase, spaces
to hyphens, punctuation dropped (hyphens/underscores kept), duplicate
slugs suffixed -1, -2, ...

Usage: check_md_links.py [root]   # exit 1 on any dead link
"""
import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "node_modules"}
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for f in filenames:
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def strip_fences(lines):
    """Yield (lineno, line) outside fenced code blocks."""
    fence = None
    for i, line in enumerate(lines, 1):
        m = FENCE_RE.match(line)
        if m:
            if fence is None:
                fence = m.group(1)
            elif m.group(1) == fence:
                fence = None
            continue
        if fence is None:
            yield i, line


def slugify(text):
    # Inline code/links render to their text before slugging.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path in cache:
        return cache[path]
    slugs = set()
    counts = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError:
        cache[path] = slugs
        return slugs
    for _, line in strip_fences(lines):
        m = HEADING_RE.match(line)
        if not m:
            continue
        base = slugify(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    cache[path] = slugs
    return slugs


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    rel = os.path.relpath(path, root)
    for lineno, line in strip_fences(lines):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if EXTERNAL_RE.match(target) or target.startswith("//"):
                continue
            target, _, frag = target.partition("#")
            if target:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                dest = path  # same-file anchor
            if not os.path.exists(dest):
                errors.append(
                    f"{rel}:{lineno}: dead link `{m.group(1)}` "
                    f"({os.path.relpath(dest, root)} does not exist)")
                continue
            if frag and dest.endswith(".md"):
                if frag.lower() not in anchors_of(dest):
                    errors.append(
                        f"{rel}:{lineno}: dead anchor `#{frag}` "
                        f"(no such heading in "
                        f"{os.path.relpath(dest, root)})")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for path in sorted(md_files(root)):
        checked += 1
        errors.extend(check_file(path, root))
    for e in errors:
        print(f"::error::md-links: {e}")
    print(f"md-links: checked {checked} file(s), {len(errors)} dead link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
